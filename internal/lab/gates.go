package lab

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"mcauth/internal/conformance"
)

// Baselines is the committed gate file `mclab check` evaluates a run and
// the bench history against. Bounds reuse the conformance bound-table
// machinery, so the same tolerances that gate `go test` conformance cells
// gate lab sweeps.
type Baselines struct {
	// Bounds gate the sweep's q_min cells. Bound.Case matches the cell's
	// scheme id (rohatgi, emss, ...); Bound.P the loss rate.
	Bounds conformance.Table `json:"bounds"`
	// BenchThreshold is the allowed fractional regression of the latest
	// bench snapshot vs the best strictly-older snapshot per benchmark
	// (0.10 = +10%). Zero disables the bench gate.
	BenchThreshold float64 `json:"bench_threshold,omitempty"`
	// BenchAllocCeilings are absolute allocs/op ceilings for named
	// benchmarks, checked against the latest clean snapshot. Unlike the
	// relative BenchThreshold they hold even when every snapshot in the
	// history regressed together, which is what keeps the zero-alloc
	// verify fast path honest. A key matches the benchmark name exactly
	// or with a -<procs> suffix (go test appends GOMAXPROCS when > 1).
	BenchAllocCeilings map[string]float64 `json:"bench_alloc_ceilings,omitempty"`
	// RequireServerResume gates the serving tier's session-resume path:
	// every cell that ran the server path with churn enabled must have
	// replayed catch-up packets to its late subscriber and verified every
	// published message. Cells without a churn server result pass
	// vacuously, so the gate composes with non-churn sweeps.
	RequireServerResume bool `json:"require_server_resume,omitempty"`
	// RequireOverlayGain gates the relay fan-out path: every repairable
	// overlay cell (a signature class to repair, a lossy tree edge to
	// lose it on) must show relays-on raising the downstream
	// authenticated fraction over relays-off by at least this much, with
	// at least one upstream repair actually served (a zero-repair
	// scenario is vacuous, not passing). Cells without a repairable
	// overlay result pass vacuously. This is the gate that encodes the
	// overlay tier's reason to exist: under correlated tree-edge loss the
	// analytic i.i.d. bound says nothing, so the sweep gates on the
	// measured simulation delta instead.
	RequireOverlayGain float64 `json:"require_overlay_gain,omitempty"`
}

// ReadBaselines loads a committed baselines file.
func ReadBaselines(path string) (Baselines, error) {
	f, err := os.Open(path)
	if err != nil {
		return Baselines{}, err
	}
	defer f.Close()
	var b Baselines
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return Baselines{}, fmt.Errorf("lab: baselines %s: %w", path, err)
	}
	if b.BenchThreshold < 0 {
		return Baselines{}, fmt.Errorf("lab: baselines %s: bench_threshold %g must be >= 0", path, b.BenchThreshold)
	}
	for name, ceil := range b.BenchAllocCeilings {
		if ceil < 0 {
			return Baselines{}, fmt.Errorf("lab: baselines %s: alloc ceiling for %s is negative", path, name)
		}
	}
	if b.RequireOverlayGain < 0 || b.RequireOverlayGain > 1 {
		return Baselines{}, fmt.Errorf("lab: baselines %s: require_overlay_gain %g out of [0,1]", path, b.RequireOverlayGain)
	}
	for i, bd := range b.Bounds {
		if bd.MCTol < 0 || bd.NetsimTol < 0 || bd.MinQMin < 0 || bd.MinQMin > 1 {
			return Baselines{}, fmt.Errorf("lab: baselines %s: bound %d out of range: %+v", path, i, bd)
		}
	}
	return b, nil
}

// WriteBaselines writes the gate file as indented JSON.
func (b Baselines) WriteBaselines(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// cellParams scales the default cross-layer tolerances to the cell's
// sample sizes: a lab smoke sweep runs far fewer trials and receivers
// than the conformance suite, so its binomial noise floor is higher. Four
// standard deviations of the worst-case (p(1-p)=1/4) binomial proportion,
// floored at the conformance defaults. Explicit per-bound tolerances in
// the baselines file still override these (Bound.Check semantics).
func cellParams(trials, receivers int) conformance.Params {
	params := conformance.DefaultParams()
	if t := 4 * math.Sqrt(0.25/float64(trials)); t > params.MCTol {
		params.MCTol = t
	}
	if t := 4 * math.Sqrt(0.25/float64(receivers)); t > params.NetsimTol {
		params.NetsimTol = t
	}
	return params
}

// CheckRun evaluates every cell of the run against the bound table and
// returns all violations, in cell order.
func (b Baselines) CheckRun(run *RunResult) []error {
	var errs []error
	for _, c := range run.Cells {
		r := conformance.Result{
			Case:       c.SchemeID,
			P:          c.P,
			Analytic:   c.Analytic,
			MonteCarlo: c.MonteCarlo,
			Measured:   c.Measured,
		}
		params := cellParams(run.Config.Trials, c.Receivers)
		errs = append(errs, b.Bounds.Check(r, params, c.HasAnalytic, c.HasMonteCarlo, c.HasMeasured)...)
		if b.RequireOverlayGain > 0 && c.Overlay != nil && c.Overlay.Repairable {
			if c.Overlay.UpstreamRepaired == 0 {
				errs = append(errs, fmt.Errorf("%s: overlay cell served no upstream repairs — the lossy-edge scenario is vacuous (the seeded edge never dropped a signature wire)", c.ID))
			}
			if c.Overlay.Gain < b.RequireOverlayGain {
				errs = append(errs, fmt.Errorf("%s: overlay repair gain %.4f below required floor %.4f (auth on=%.4f off=%.4f)",
					c.ID, c.Overlay.Gain, b.RequireOverlayGain, c.Overlay.AuthOn, c.Overlay.AuthOff))
			}
		}
		if b.RequireServerResume && c.Server != nil && c.Server.Churned {
			if c.Server.ResumeCatchup <= 0 {
				errs = append(errs, fmt.Errorf("%s: churn cell replayed no resume catch-up packets", c.ID))
			}
			if c.Server.Verified != c.Server.Published {
				errs = append(errs, fmt.Errorf("%s: churn cell verified %d of %d published messages after resume",
					c.ID, c.Server.Verified, c.Server.Published))
			}
		}
	}
	if b.RequireServerResume && run.Config.Server.Churn {
		churned := false
		for _, c := range run.Cells {
			if c.Server != nil && c.Server.Churned {
				churned = true
				break
			}
		}
		if !churned {
			errs = append(errs, fmt.Errorf("run %s: require_server_resume set and config asks for churn, but no cell produced a churn server result", run.RunID()))
		}
	}
	if b.RequireOverlayGain > 0 && run.Config.HasPath(PathOverlay) {
		repairable := false
		for _, c := range run.Cells {
			if c.Overlay != nil && c.Overlay.Repairable {
				repairable = true
				break
			}
		}
		if !repairable {
			errs = append(errs, fmt.Errorf("run %s: require_overlay_gain set and config asks for the overlay path, but no cell produced a repairable overlay result", run.RunID()))
		}
	}
	// SLO objectives ride in the run's own config rather than the
	// baselines file: the sweep declares its service level, the gate
	// enforces it.
	errs = append(errs, CheckSLO(run)...)
	return errs
}

// CheckBench gates the newest clean bench snapshot against the best
// strictly-older clean snapshot per benchmark: ns/op may not regress by
// more than the threshold fraction, and allocs/op by more than the
// threshold fraction plus an absolute slack of 2 allocations (so
// near-zero counts are not gated on integer jitter). Dirty-tree
// snapshots are dropped from the comparison entirely — as baseline and
// as candidate — so only commit-attributable numbers ever gate.
// Benchmarks with no older measurement pass vacuously; an empty or
// single-file clean history passes the relative gate, but absolute
// alloc ceilings still apply to the latest clean snapshot.
func (b Baselines) CheckBench(history []*BenchFile) []error {
	clean := history[:0:0]
	for _, bf := range history {
		if !bf.Dirty() {
			clean = append(clean, bf)
		}
	}
	var errs []error
	if len(clean) > 0 {
		errs = append(errs, b.checkAllocCeilings(clean[len(clean)-1])...)
	}
	if b.BenchThreshold <= 0 || len(clean) < 2 {
		return errs
	}
	latest := clean[len(clean)-1]
	series := SeriesByName(clean[:len(clean)-1])
	for _, bm := range latest.Benchmarks {
		points := series[bm.Name]
		if len(points) == 0 {
			continue
		}
		bestNs, bestAllocs := math.Inf(1), math.Inf(1)
		var bestNsFile string
		for _, pt := range points {
			if pt.Benchmark.NsPerOp != nil && *pt.Benchmark.NsPerOp < bestNs {
				bestNs = *pt.Benchmark.NsPerOp
				bestNsFile = pt.File.ShortCommit()
			}
			if pt.Benchmark.AllocsPerOp != nil && *pt.Benchmark.AllocsPerOp < bestAllocs {
				bestAllocs = *pt.Benchmark.AllocsPerOp
			}
		}
		if bm.NsPerOp != nil && !math.IsInf(bestNs, 1) {
			if limit := bestNs * (1 + b.BenchThreshold); *bm.NsPerOp > limit {
				errs = append(errs, fmt.Errorf(
					"%s: %.1f ns/op regresses %.1f%% over best baseline %.1f ns/op (%s; threshold %.0f%%)",
					bm.Name, *bm.NsPerOp, 100*(*bm.NsPerOp/bestNs-1), bestNs, bestNsFile, 100*b.BenchThreshold))
			}
		}
		if bm.AllocsPerOp != nil && !math.IsInf(bestAllocs, 1) {
			if limit := bestAllocs*(1+b.BenchThreshold) + 2; *bm.AllocsPerOp > limit {
				errs = append(errs, fmt.Errorf(
					"%s: %.0f allocs/op regresses over best baseline %.0f allocs/op (threshold %.0f%% + 2)",
					bm.Name, *bm.AllocsPerOp, bestAllocs, 100*b.BenchThreshold))
			}
		}
	}
	return errs
}

// checkAllocCeilings applies the absolute allocs/op ceilings to one
// snapshot. Ceiling keys match the benchmark name exactly or with a
// trailing -<procs> tag; benchmarks absent from the snapshot pass
// vacuously (the ceiling gates regressions, not bench coverage).
func (b Baselines) checkAllocCeilings(latest *BenchFile) []error {
	if len(b.BenchAllocCeilings) == 0 {
		return nil
	}
	var errs []error
	for _, bm := range latest.Benchmarks {
		if bm.AllocsPerOp == nil {
			continue
		}
		name := bm.Name
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		ceil, ok := b.BenchAllocCeilings[name]
		if !ok {
			ceil, ok = b.BenchAllocCeilings[bm.Name]
		}
		if !ok {
			continue
		}
		if *bm.AllocsPerOp > ceil {
			errs = append(errs, fmt.Errorf(
				"%s: %.0f allocs/op exceeds absolute ceiling %.0f (%s)",
				bm.Name, *bm.AllocsPerOp, ceil, latest.ShortCommit()))
		}
	}
	return errs
}

// DefaultBaselines is the starting gate: conformance-default tolerances on
// every cell, no q_min floors, 10% bench threshold.
func DefaultBaselines() Baselines {
	return Baselines{Bounds: conformance.DefaultTable(), BenchThreshold: 0.10}
}
