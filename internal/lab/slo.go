package lab

import "fmt"

// CellObjective is one cell's evaluation against one sweep objective.
// Target and Actual share the objective's unit (a fraction for
// auth_fraction, nanoseconds for tta_p99).
type CellObjective struct {
	Name   string
	Target float64
	Actual float64
	Met    bool
}

// EvaluateCell checks one cell against the objectives. An objective only
// produces a result when its target is set and the cell carries the
// quantity it bounds: auth_fraction needs the netsim measured q_min,
// tta_p99 needs latency samples (per-packet schemes record none, so they
// pass vacuously rather than gate on a missing histogram).
func (o *SLOObjectives) EvaluateCell(c CellResult) []CellObjective {
	if o == nil {
		return nil
	}
	var out []CellObjective
	if o.MinAuthFraction > 0 && c.HasMeasured {
		out = append(out, CellObjective{
			Name:   "auth_fraction",
			Target: o.MinAuthFraction,
			Actual: c.Measured,
			Met:    c.Measured >= o.MinAuthFraction,
		})
	}
	if o.TTAP99NS > 0 && c.TimeToAuthNS.Count > 0 {
		out = append(out, CellObjective{
			Name:   "tta_p99",
			Target: float64(o.TTAP99NS),
			Actual: c.TimeToAuthNS.P99,
			Met:    c.TimeToAuthNS.P99 <= float64(o.TTAP99NS),
		})
	}
	return out
}

// CheckSLO evaluates every cell of a run against the run's own configured
// objectives and returns one error per missed objective, in cell order.
// Runs without an SLO block pass vacuously.
func CheckSLO(run *RunResult) []error {
	var errs []error
	for _, c := range run.Cells {
		for _, ob := range run.Config.SLO.EvaluateCell(c) {
			if ob.Met {
				continue
			}
			switch ob.Name {
			case "auth_fraction":
				errs = append(errs, fmt.Errorf("%s: slo auth_fraction %.4f below objective %.4f",
					c.ID, ob.Actual, ob.Target))
			case "tta_p99":
				errs = append(errs, fmt.Errorf("%s: slo tta_p99 %s exceeds objective %s",
					c.ID, fns(ob.Actual), fns(ob.Target)))
			default:
				errs = append(errs, fmt.Errorf("%s: slo %s missed (%.4f vs %.4f)",
					c.ID, ob.Name, ob.Actual, ob.Target))
			}
		}
	}
	return errs
}
