package lab

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Benchmark is one row of a BENCH_<sha>.json file (scripts/bench.sh
// output). Numeric fields are pointers because the script emits JSON null
// for metrics a benchmark does not report (e.g. MB/s).
type Benchmark struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     *float64 `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
	MBPerS      *float64 `json:"mb_per_s"`
}

// BenchFile is one perf snapshot, attributed to a commit.
type BenchFile struct {
	Commit     string `json:"commit"`
	Go         string `json:"go"`
	CPUs       int    `json:"cpus"`
	GoMaxProcs int    `json:"gomaxprocs"`
	BenchTime  string `json:"benchtime"`
	// GeneratedAtUnix orders snapshots in the trajectory; files from before
	// the field existed carry 0 and sort oldest, tie-broken by filename.
	GeneratedAtUnix int64       `json:"generated_at_unix,omitempty"`
	Benchmarks      []Benchmark `json:"benchmarks"`

	// File is the source path (not serialized).
	File string `json:"-"`
}

// Dirty reports whether the snapshot was taken on an unclean working
// tree (scripts/bench.sh -dirty). Older files tag only the filename, so
// both the commit field and the source path are consulted. Dirty
// snapshots render in the dashboard but never gate: their numbers are
// not attributable to any commit.
func (b *BenchFile) Dirty() bool {
	return strings.HasSuffix(b.Commit, "-dirty") ||
		strings.Contains(filepath.Base(b.File), "-dirty")
}

// ShortCommit trims the commit hash for display, preserving a -dirty tag.
func (b *BenchFile) ShortCommit() string {
	c := b.Commit
	dirty := ""
	if s, ok := strings.CutSuffix(c, "-dirty"); ok {
		c, dirty = s, "-dirty"
	}
	if len(c) > 7 {
		c = c[:7]
	}
	return c + dirty
}

// ReadBenchFile loads one BENCH_<sha>.json.
func ReadBenchFile(path string) (*BenchFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf BenchFile
	if err := json.Unmarshal(b, &bf); err != nil {
		return nil, fmt.Errorf("lab: %s: %w", path, err)
	}
	bf.File = path
	return &bf, nil
}

// LoadBenchHistory gathers every BENCH_*.json under the given directories
// (non-recursive; missing directories are skipped) into chronological
// order: generated_at_unix ascending, ties and pre-field files by
// filename.
func LoadBenchHistory(dirs ...string) ([]*BenchFile, error) {
	var out []*BenchFile
	for _, dir := range dirs {
		matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
		if err != nil {
			return nil, err
		}
		sort.Strings(matches)
		for _, m := range matches {
			bf, err := ReadBenchFile(m)
			if err != nil {
				return nil, err
			}
			out = append(out, bf)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].GeneratedAtUnix != out[j].GeneratedAtUnix {
			return out[i].GeneratedAtUnix < out[j].GeneratedAtUnix
		}
		return filepath.Base(out[i].File) < filepath.Base(out[j].File)
	})
	return out, nil
}

// BenchSeries pivots the history into per-benchmark trajectories, keyed by
// benchmark name, each in history order.
type BenchPoint struct {
	File      *BenchFile
	Benchmark Benchmark
}

// SeriesByName pivots history (already chronological) into per-benchmark
// trajectories. Names are the map's sorted-key iteration responsibility of
// the caller.
func SeriesByName(history []*BenchFile) map[string][]BenchPoint {
	out := make(map[string][]BenchPoint)
	for _, bf := range history {
		for _, bm := range bf.Benchmarks {
			out[bm.Name] = append(out[bm.Name], BenchPoint{File: bf, Benchmark: bm})
		}
	}
	return out
}

// SortedNames returns the series keys in sorted order.
func SortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
