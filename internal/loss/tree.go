// Correlated tree-edge loss: the paper's analysis assumes every receiver
// draws an independent loss pattern, but a real multicast distribution tree
// loses packets on *edges* — when the link feeding a relay drops a packet,
// every receiver in that subtree misses the same packet. TreeModel captures
// that regime: a tree of seeded per-edge loss processes whose patterns are
// shared by all receivers below the edge, composed with an independent
// per-receiver last-hop model (any existing Model: Bernoulli,
// Gilbert-Elliott, ...). The correlation breaks the closed-form analysis
// (q_min is no longer a product of independent per-receiver terms), which
// is exactly why the Monte-Carlo and netsim layers are the source of truth
// for tree scenarios.
package loss

import (
	"fmt"

	"mcauth/internal/stats"
)

// TreeModel is a multicast distribution tree with a loss process on every
// edge. Node 0 is the source; every other node is a relay. Receivers
// attach round-robin to the leaves and observe the AND of every edge
// pattern on their root path, composed with their own independent last-hop
// model.
//
// Edge patterns are derived from the tree seed, not from the caller's RNG:
// two receivers under the same edge therefore lose the *same* packets —
// the shared-fate semantics of a distribution tree. The per-receiver
// last-hop model still draws from the caller's RNG, so with lossless tree
// edges a receiver's pattern (and RNG stream) is bit-identical to the
// plain last-hop model's.
//
// Build the tree before sampling and do not mutate it afterwards; the
// sampling entry points are then safe for concurrent use by independent
// receivers.
type TreeModel struct {
	seed   uint64
	parent []int   // parent[0] = -1
	edge   []Model // edge[i] is the loss process on parent[i] -> i; nil = lossless
	leaf   Model   // per-receiver last-hop model; nil = lossless
}

// NewTree creates a tree holding only the source (node 0). leaf is the
// independent per-receiver last-hop loss model; nil means a lossless last
// hop.
func NewTree(seed uint64, leaf Model) *TreeModel {
	return &TreeModel{
		seed:   seed,
		parent: []int{-1},
		edge:   []Model{nil},
		leaf:   leaf,
	}
}

// NewUniformTree builds a complete tree of the given depth and fanout:
// depth 0 is just the source, depth 1 adds fanout relays, and so on. Every
// edge carries the same loss process (nil = lossless edges); use SetEdge
// to make individual edges lossy afterwards.
func NewUniformTree(seed uint64, depth, fanout int, edge, leaf Model) (*TreeModel, error) {
	if depth < 0 {
		return nil, fmt.Errorf("loss: tree depth %d must be >= 0", depth)
	}
	if depth > 0 && fanout < 1 {
		return nil, fmt.Errorf("loss: tree fanout %d must be >= 1", fanout)
	}
	t := NewTree(seed, leaf)
	level := []int{0}
	for d := 0; d < depth; d++ {
		var next []int
		for _, p := range level {
			for k := 0; k < fanout; k++ {
				id, err := t.AddNode(p, edge)
				if err != nil {
					return nil, err
				}
				next = append(next, id)
			}
		}
		level = next
	}
	return t, nil
}

// AddNode attaches a new relay under parent with the given edge loss
// process (nil = lossless edge) and returns its node index. Parents must
// exist already, so node indices are always topologically ordered
// (parent < child).
func (t *TreeModel) AddNode(parent int, edge Model) (int, error) {
	if parent < 0 || parent >= len(t.parent) {
		return 0, fmt.Errorf("loss: tree parent %d out of [0,%d)", parent, len(t.parent))
	}
	t.parent = append(t.parent, parent)
	t.edge = append(t.edge, edge)
	return len(t.parent) - 1, nil
}

// SetEdge replaces the loss process on the edge feeding node (nil =
// lossless). Node 0 has no feeding edge.
func (t *TreeModel) SetEdge(node int, edge Model) error {
	if node < 1 || node >= len(t.parent) {
		return fmt.Errorf("loss: tree node %d out of [1,%d)", node, len(t.parent))
	}
	t.edge[node] = edge
	return nil
}

// Nodes returns the node count including the source.
func (t *TreeModel) Nodes() int { return len(t.parent) }

// Parent returns the parent of node (-1 for the source).
func (t *TreeModel) Parent(node int) int { return t.parent[node] }

// EdgeModel returns the loss process feeding node (nil = lossless).
func (t *TreeModel) EdgeModel(node int) Model { return t.edge[node] }

// LeafModel returns the per-receiver last-hop model (nil = lossless).
func (t *TreeModel) LeafModel() Model { return t.leaf }

// Leaves returns the nodes with no children, in ascending index order.
// A tree with only the source has the source as its single leaf.
func (t *TreeModel) Leaves() []int {
	hasChild := make([]bool, len(t.parent))
	for n := 1; n < len(t.parent); n++ {
		hasChild[t.parent[n]] = true
	}
	var out []int
	for n := range t.parent {
		if !hasChild[n] {
			out = append(out, n)
		}
	}
	return out
}

// LeafFor maps receiver r to its leaf node, round-robin over Leaves.
func (t *TreeModel) LeafFor(r int) int {
	leaves := t.Leaves()
	return leaves[r%len(leaves)]
}

// Path returns the edges (named by their lower node) from the source to
// node, in root-to-node order. Empty for the source itself.
func (t *TreeModel) Path(node int) []int {
	var rev []int
	for n := node; n > 0; n = t.parent[n] {
		rev = append(rev, n)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// edgeSeed derives the deterministic per-edge pattern seed. Independent of
// the caller's RNG by design: the pattern is a property of the edge, not
// of who looks at it.
func (t *TreeModel) edgeSeed(node int) uint64 {
	return (t.seed ^ 0x7472656565646765) + uint64(node)*0x9E3779B97F4A7C15 // "treeedge"
}

// EdgePatternInto fills recv[1..] with the shared received pattern of the
// edge feeding node: every receiver below the edge sees this same pattern.
// A nil edge model is lossless (all true). Same 1-based contract as
// Model.SampleInto.
func (t *TreeModel) EdgePatternInto(node int, recv []bool) {
	if len(recv) <= 1 {
		return
	}
	m := t.edge[node]
	if m == nil {
		for i := 1; i < len(recv); i++ {
			recv[i] = true
		}
		return
	}
	m.SampleInto(stats.NewRNG(t.edgeSeed(node)), recv)
}

// Receiver returns receiver r's composed loss model under the shared-fate
// semantics: edge patterns are drawn from the tree seed (identical for
// every receiver under the edge), the last hop from the caller's RNG. The
// returned model keeps internal scratch and must not be shared across
// goroutines; derive one per receiver.
func (t *TreeModel) Receiver(r int) Model {
	return &treePath{t: t, path: t.Path(t.LeafFor(r)), shared: true}
}

// Marginal returns receiver r's loss model with edge patterns redrawn from
// the caller's RNG on every Sample — the i.i.d. marginal distribution of
// the receiver's loss, for Monte-Carlo estimation over many independent
// blocks. Across trials the marginal loss rate of packet i converges to
// 1 - prod(1-rate_e) over the path edges and last hop.
func (t *TreeModel) Marginal(r int) Model {
	return &treePath{t: t, path: t.Path(t.LeafFor(r)), shared: false}
}

// treePath is one receiver's root-path view of the tree.
type treePath struct {
	t       *TreeModel
	path    []int
	shared  bool
	scratch []bool
}

var _ Model = (*treePath)(nil)

// Sample implements Model.
func (p *treePath) Sample(rng *stats.RNG, n int) []bool {
	recv := make([]bool, n+1)
	p.SampleInto(rng, recv)
	return recv
}

// SampleInto implements Model: the last-hop model fills recv from the
// caller's RNG (or all-true when lossless), then every path edge's pattern
// is ANDed in. Zero-length destinations are no-ops and draw nothing, like
// every other Model.
func (p *treePath) SampleInto(rng *stats.RNG, recv []bool) {
	if len(recv) <= 1 {
		return
	}
	if leaf := p.t.leaf; leaf != nil {
		leaf.SampleInto(rng, recv)
	} else {
		for i := 1; i < len(recv); i++ {
			recv[i] = true
		}
	}
	if len(p.path) == 0 {
		return
	}
	if cap(p.scratch) < len(recv) {
		p.scratch = make([]bool, len(recv))
	}
	scratch := p.scratch[:len(recv)]
	for _, e := range p.path {
		m := p.t.edge[e]
		if m == nil {
			continue
		}
		if p.shared {
			m.SampleInto(stats.NewRNG(p.t.edgeSeed(e)), scratch)
		} else {
			m.SampleInto(stats.NewRNG(rng.Uint64()), scratch)
		}
		for i := 1; i < len(recv); i++ {
			recv[i] = recv[i] && scratch[i]
		}
	}
}

// Rate implements Model: the marginal loss rate of the path, one minus the
// product of per-hop delivery rates.
func (p *treePath) Rate() float64 {
	deliver := 1.0
	if p.t.leaf != nil {
		deliver *= 1 - p.t.leaf.Rate()
	}
	for _, e := range p.path {
		if m := p.t.edge[e]; m != nil {
			deliver *= 1 - m.Rate()
		}
	}
	return 1 - deliver
}

// Name implements Model.
func (p *treePath) Name() string {
	leaf := "lossless"
	if p.t.leaf != nil {
		leaf = p.t.leaf.Name()
	}
	mode := "shared"
	if !p.shared {
		mode = "marginal"
	}
	return fmt.Sprintf("tree(hops=%d, leaf=%s, %s)", len(p.path), leaf, mode)
}
