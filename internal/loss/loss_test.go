package loss

import (
	"math"
	"testing"

	"mcauth/internal/stats"
)

func measuredLossRate(t *testing.T, m Model, n, trials int, seed uint64) float64 {
	t.Helper()
	rng := stats.NewRNG(seed)
	lost := 0
	for i := 0; i < trials; i++ {
		recv := m.Sample(rng, n)
		if len(recv) != n+1 {
			t.Fatalf("Sample returned %d flags, want %d", len(recv), n+1)
		}
		for j := 1; j <= n; j++ {
			if !recv[j] {
				lost++
			}
		}
	}
	return float64(lost) / float64(trials*n)
}

func TestBernoulliRate(t *testing.T) {
	for _, p := range []float64{0, 0.1, 0.5, 1} {
		m, err := NewBernoulli(p)
		if err != nil {
			t.Fatal(err)
		}
		got := measuredLossRate(t, m, 100, 1000, 1)
		if math.Abs(got-p) > 0.01 {
			t.Errorf("p=%v: measured rate %v", p, got)
		}
		if m.Rate() != p {
			t.Errorf("Rate() = %v, want %v", m.Rate(), p)
		}
	}
}

func TestBernoulliValidation(t *testing.T) {
	if _, err := NewBernoulli(-0.1); err == nil {
		t.Error("negative p should fail")
	}
	if _, err := NewBernoulli(1.1); err == nil {
		t.Error("p>1 should fail")
	}
}

func TestGilbertElliottStationary(t *testing.T) {
	g, err := NewGilbertElliott(0.1, 0.4, 0.01, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	wantBad := 0.1 / 0.5
	if math.Abs(g.StationaryBad()-wantBad) > 1e-12 {
		t.Errorf("StationaryBad = %v, want %v", g.StationaryBad(), wantBad)
	}
	wantRate := 0.8*wantBad + 0.01*(1-wantBad)
	if math.Abs(g.Rate()-wantRate) > 1e-12 {
		t.Errorf("Rate = %v, want %v", g.Rate(), wantRate)
	}
	measured := measuredLossRate(t, g, 200, 2000, 2)
	if math.Abs(measured-wantRate) > 0.01 {
		t.Errorf("measured rate %v, want ~%v", measured, wantRate)
	}
	if math.Abs(g.MeanBurstLength()-2.5) > 1e-12 {
		t.Errorf("MeanBurstLength = %v, want 2.5", g.MeanBurstLength())
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	// With a sticky bad state, losses must cluster: the conditional
	// probability of loss following a loss should far exceed the
	// marginal rate.
	g, err := NewGilbertElliott(0.02, 0.2, 0.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(3)
	var lossPairs, lossTotal int
	for trial := 0; trial < 500; trial++ {
		recv := g.Sample(rng, 200)
		for i := 1; i < 200; i++ {
			if !recv[i] {
				lossTotal++
				if !recv[i+1] {
					lossPairs++
				}
			}
		}
	}
	condLoss := float64(lossPairs) / float64(lossTotal)
	if condLoss < 3*g.Rate() {
		t.Errorf("conditional loss %v not bursty relative to rate %v", condLoss, g.Rate())
	}
}

func TestGilbertElliottValidation(t *testing.T) {
	if _, err := NewGilbertElliott(-0.1, 0.5, 0, 1); err == nil {
		t.Error("negative transition probability should fail")
	}
	if _, err := NewGilbertElliott(0, 0, 0, 1); err == nil {
		t.Error("degenerate chain should fail")
	}
}

func TestSingleBurst(t *testing.T) {
	m, err := NewSingleBurst(5)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(4)
	for trial := 0; trial < 200; trial++ {
		recv := m.Sample(rng, 50)
		// Exactly one contiguous run of losses, length <= 5.
		runs, runLen := 0, 0
		inRun := false
		for i := 1; i <= 50; i++ {
			if !recv[i] {
				if !inRun {
					runs++
					inRun = true
				}
				runLen++
			} else {
				inRun = false
			}
		}
		if runs != 1 {
			t.Fatalf("found %d loss runs, want 1", runs)
		}
		if runLen > 5 || runLen < 1 {
			t.Fatalf("burst length %d out of [1,5]", runLen)
		}
	}
}

func TestSingleBurstZeroLength(t *testing.T) {
	m, err := NewSingleBurst(0)
	if err != nil {
		t.Fatal(err)
	}
	recv := m.Sample(stats.NewRNG(1), 10)
	for i := 1; i <= 10; i++ {
		if !recv[i] {
			t.Fatal("zero-length burst lost a packet")
		}
	}
	if _, err := NewSingleBurst(-1); err == nil {
		t.Error("negative length should fail")
	}
}

func TestTraceReplay(t *testing.T) {
	m, err := NewTrace([]bool{true, false, false})
	if err != nil {
		t.Fatal(err)
	}
	recv := m.Sample(nil, 6)
	want := []bool{false, false, true, true, false, true, true} // index 0 unused
	for i := 1; i <= 6; i++ {
		if recv[i] != want[i] {
			t.Errorf("recv[%d] = %v, want %v", i, recv[i], want[i])
		}
	}
	if math.Abs(m.Rate()-1.0/3.0) > 1e-12 {
		t.Errorf("Rate = %v, want 1/3", m.Rate())
	}
	if _, err := NewTrace(nil); err == nil {
		t.Error("empty trace should fail")
	}
}

func TestNames(t *testing.T) {
	models := []Model{
		Bernoulli{P: 0.1},
		GilbertElliott{PGoodToBad: 0.1, PBadToGood: 0.5, PBad: 1},
		SingleBurst{Length: 3},
		Trace{Lost: []bool{true}},
	}
	seen := make(map[string]bool)
	for _, m := range models {
		name := m.Name()
		if name == "" || seen[name] {
			t.Errorf("model name %q empty or duplicated", name)
		}
		seen[name] = true
	}
}

func TestPatternAdapter(t *testing.T) {
	m, err := NewBernoulli(0.5)
	if err != nil {
		t.Fatal(err)
	}
	pattern := Pattern(m)
	recv := pattern(stats.NewRNG(9), 20)
	if len(recv) != 21 {
		t.Errorf("adapter returned %d flags, want 21", len(recv))
	}
}
