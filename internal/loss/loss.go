// Package loss provides packet-loss channel models. The paper's analysis
// uses an independent random (Bernoulli) loss model (Section 4.1); the
// augmented chain was designed against single bursts, and the paper's
// future work names the m-state Markov model — both are covered here by the
// single-burst and Gilbert-Elliott models. All models implement Model and
// adapt to depgraph.ReceivePattern via Pattern.
package loss

import (
	"fmt"

	"mcauth/internal/depgraph"
	"mcauth/internal/stats"
)

// Model decides, packet by packet, whether each packet of a stream is lost.
// Implementations are stateful across a block (bursty models) but reset per
// Sample call.
type Model interface {
	// Sample returns received flags for packets 1..n (index 0 unused).
	Sample(rng *stats.RNG, n int) []bool
	// SampleInto fills received[1..len(received)-1] in place — the
	// allocation-free form consumed by the Monte-Carlo hot loop. It draws
	// the same RNG stream as Sample, so either entry point yields the
	// same pattern from the same generator state.
	SampleInto(rng *stats.RNG, received []bool)
	// Rate returns the model's long-run loss probability.
	Rate() float64
	// Name identifies the model in reports.
	Name() string
}

// Pattern adapts a Model to the depgraph Monte-Carlo estimator.
func Pattern(m Model) depgraph.ReceivePattern {
	return m.Sample
}

// PatternInto adapts a Model to the depgraph Monte-Carlo estimator's
// scratch-reuse interface; trials sampled through it allocate nothing.
func PatternInto(m Model) depgraph.ReceivePatternInto {
	return func(rng *stats.RNG, received []bool) error {
		m.SampleInto(rng, received)
		return nil
	}
}

// Bernoulli is the paper's i.i.d. loss model: each packet lost with
// probability P.
type Bernoulli struct {
	P float64
}

var _ Model = Bernoulli{}

// NewBernoulli validates p and returns the model.
func NewBernoulli(p float64) (Bernoulli, error) {
	if p < 0 || p > 1 {
		return Bernoulli{}, fmt.Errorf("loss: probability %v out of [0,1]", p)
	}
	return Bernoulli{P: p}, nil
}

// Sample implements Model.
func (b Bernoulli) Sample(rng *stats.RNG, n int) []bool {
	recv := make([]bool, n+1)
	b.SampleInto(rng, recv)
	return recv
}

// SampleInto implements Model.
func (b Bernoulli) SampleInto(rng *stats.RNG, recv []bool) {
	for i := 1; i < len(recv); i++ {
		recv[i] = !rng.Bernoulli(b.P)
	}
}

// Rate implements Model.
func (b Bernoulli) Rate() float64 { return b.P }

// Name implements Model.
func (b Bernoulli) Name() string { return fmt.Sprintf("bernoulli(p=%.3g)", b.P) }

// GilbertElliott is the classic 2-state Markov bursty-loss model: a Good
// state with loss PGood and a Bad state with loss PBad, with transition
// probabilities PGoodToBad and PBadToGood per packet. It realizes the
// "m-state Markov model" extension the paper names as future work (m=2).
type GilbertElliott struct {
	PGoodToBad float64
	PBadToGood float64
	PGood      float64 // loss probability while in Good
	PBad       float64 // loss probability while in Bad
}

var _ Model = GilbertElliott{}

// NewGilbertElliott validates the parameters.
func NewGilbertElliott(pGoodToBad, pBadToGood, pGood, pBad float64) (GilbertElliott, error) {
	for _, v := range []float64{pGoodToBad, pBadToGood, pGood, pBad} {
		if v < 0 || v > 1 {
			return GilbertElliott{}, fmt.Errorf("loss: parameter %v out of [0,1]", v)
		}
	}
	if pGoodToBad+pBadToGood == 0 {
		return GilbertElliott{}, fmt.Errorf("loss: degenerate chain (both transition probabilities zero)")
	}
	return GilbertElliott{
		PGoodToBad: pGoodToBad,
		PBadToGood: pBadToGood,
		PGood:      pGood,
		PBad:       pBad,
	}, nil
}

// StationaryBad returns the stationary probability of the Bad state.
func (g GilbertElliott) StationaryBad() float64 {
	return g.PGoodToBad / (g.PGoodToBad + g.PBadToGood)
}

// MeanBurstLength returns the expected number of consecutive packets spent
// in the Bad state once entered.
func (g GilbertElliott) MeanBurstLength() float64 {
	if g.PBadToGood == 0 {
		return 0
	}
	return 1 / g.PBadToGood
}

// Sample implements Model. The chain starts in its stationary distribution
// so that short blocks are unbiased.
func (g GilbertElliott) Sample(rng *stats.RNG, n int) []bool {
	recv := make([]bool, n+1)
	g.SampleInto(rng, recv)
	return recv
}

// SampleInto implements Model.
func (g GilbertElliott) SampleInto(rng *stats.RNG, recv []bool) {
	bad := rng.Bernoulli(g.StationaryBad())
	for i := 1; i < len(recv); i++ {
		pLoss := g.PGood
		if bad {
			pLoss = g.PBad
		}
		recv[i] = !rng.Bernoulli(pLoss)
		if bad {
			if rng.Bernoulli(g.PBadToGood) {
				bad = false
			}
		} else if rng.Bernoulli(g.PGoodToBad) {
			bad = true
		}
	}
}

// Rate implements Model: the stationary loss probability.
func (g GilbertElliott) Rate() float64 {
	pb := g.StationaryBad()
	return (1-pb)*g.PGood + pb*g.PBad
}

// Name implements Model.
func (g GilbertElliott) Name() string {
	return fmt.Sprintf("gilbert(pi_bad=%.3g, burst=%.3g)", g.StationaryBad(), g.MeanBurstLength())
}

// SingleBurst loses exactly one contiguous run of Length packets with a
// uniformly random start position (if Length >= n, everything but the root
// position is hit). It is the adversary the augmented chain construction
// targets.
type SingleBurst struct {
	Length int
}

var _ Model = SingleBurst{}

// NewSingleBurst validates the burst length.
func NewSingleBurst(length int) (SingleBurst, error) {
	if length < 0 {
		return SingleBurst{}, fmt.Errorf("loss: burst length %d must be >= 0", length)
	}
	return SingleBurst{Length: length}, nil
}

// Sample implements Model.
func (s SingleBurst) Sample(rng *stats.RNG, n int) []bool {
	recv := make([]bool, n+1)
	s.SampleInto(rng, recv)
	return recv
}

// SampleInto implements Model.
func (s SingleBurst) SampleInto(rng *stats.RNG, recv []bool) {
	n := len(recv) - 1
	for i := 1; i <= n; i++ {
		recv[i] = true
	}
	if s.Length == 0 || n <= 0 {
		return
	}
	start := rng.Intn(n) + 1
	for i := start; i < start+s.Length && i <= n; i++ {
		recv[i] = false
	}
}

// Rate implements Model: expected fraction lost for a large block is
// roughly Length/n; with no block size available we report 0 and callers
// needing a rate should use measured values.
func (s SingleBurst) Rate() float64 { return 0 }

// Name implements Model.
func (s SingleBurst) Name() string { return fmt.Sprintf("burst(len=%d)", s.Length) }

// Trace replays a recorded loss pattern; it cycles if the block is longer
// than the trace. Useful for regression tests with hand-crafted patterns.
type Trace struct {
	Lost []bool // Lost[k] == true means the k-th packet of the trace is lost
}

var _ Model = Trace{}

// NewTrace validates the trace.
func NewTrace(lost []bool) (Trace, error) {
	if len(lost) == 0 {
		return Trace{}, fmt.Errorf("loss: empty trace")
	}
	return Trace{Lost: append([]bool(nil), lost...)}, nil
}

// Sample implements Model.
func (t Trace) Sample(rng *stats.RNG, n int) []bool {
	recv := make([]bool, n+1)
	t.SampleInto(rng, recv)
	return recv
}

// SampleInto implements Model.
func (t Trace) SampleInto(_ *stats.RNG, recv []bool) {
	for i := 1; i < len(recv); i++ {
		recv[i] = !t.Lost[(i-1)%len(t.Lost)]
	}
}

// Rate implements Model.
func (t Trace) Rate() float64 {
	lost := 0
	for _, l := range t.Lost {
		if l {
			lost++
		}
	}
	return float64(lost) / float64(len(t.Lost))
}

// Name implements Model.
func (t Trace) Name() string { return fmt.Sprintf("trace(len=%d)", len(t.Lost)) }
