package loss

import "fmt"

import "mcauth/internal/stats"

// MarkovChain is the paper's "m-state Markov model" future-work extension
// in full generality: an m-state chain where state s drops packets with
// probability LossProb[s] and transitions per packet according to the row-
// stochastic matrix Transitions. GilbertElliott is the m = 2 special case.
type MarkovChain struct {
	// Transitions[i][j] is the per-packet probability of moving from
	// state i to state j. Rows must sum to 1.
	Transitions [][]float64
	// LossProb[i] is the packet loss probability while in state i.
	LossProb []float64

	stationary []float64
}

var _ Model = (*MarkovChain)(nil)

// NewMarkovChain validates the chain and precomputes its stationary
// distribution (by power iteration; the chain must be ergodic enough for
// it to converge, which any practical loss model is).
func NewMarkovChain(transitions [][]float64, lossProb []float64) (*MarkovChain, error) {
	m := len(transitions)
	if m == 0 {
		return nil, fmt.Errorf("loss: markov chain needs at least one state")
	}
	if len(lossProb) != m {
		return nil, fmt.Errorf("loss: %d loss probabilities for %d states", len(lossProb), m)
	}
	for i, row := range transitions {
		if len(row) != m {
			return nil, fmt.Errorf("loss: transition row %d has %d entries, want %d", i, len(row), m)
		}
		sum := 0.0
		for j, pij := range row {
			if pij < 0 || pij > 1 {
				return nil, fmt.Errorf("loss: transition[%d][%d] = %v out of [0,1]", i, j, pij)
			}
			sum += pij
		}
		if sum < 1-1e-9 || sum > 1+1e-9 {
			return nil, fmt.Errorf("loss: transition row %d sums to %v, want 1", i, sum)
		}
	}
	for i, p := range lossProb {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("loss: loss probability[%d] = %v out of [0,1]", i, p)
		}
	}
	mc := &MarkovChain{
		Transitions: deepCopy(transitions),
		LossProb:    append([]float64(nil), lossProb...),
	}
	mc.stationary = mc.computeStationary()
	return mc, nil
}

func deepCopy(rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, row := range rows {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

// computeStationary power-iterates the uniform distribution.
func (mc *MarkovChain) computeStationary() []float64 {
	m := len(mc.Transitions)
	pi := make([]float64, m)
	for i := range pi {
		pi[i] = 1 / float64(m)
	}
	next := make([]float64, m)
	for iter := 0; iter < 10000; iter++ {
		for j := range next {
			next[j] = 0
		}
		for i, pii := range pi {
			for j, pij := range mc.Transitions[i] {
				next[j] += pii * pij
			}
		}
		delta := 0.0
		for j := range next {
			d := next[j] - pi[j]
			if d < 0 {
				d = -d
			}
			if d > delta {
				delta = d
			}
		}
		pi, next = next, pi
		if delta < 1e-14 {
			break
		}
	}
	return pi
}

// Stationary returns a copy of the stationary state distribution.
func (mc *MarkovChain) Stationary() []float64 {
	return append([]float64(nil), mc.stationary...)
}

// Sample implements Model; the chain starts stationary.
func (mc *MarkovChain) Sample(rng *stats.RNG, n int) []bool {
	recv := make([]bool, n+1)
	mc.SampleInto(rng, recv)
	return recv
}

// SampleInto implements Model.
func (mc *MarkovChain) SampleInto(rng *stats.RNG, recv []bool) {
	state := sampleIndex(rng, mc.stationary)
	for i := 1; i < len(recv); i++ {
		recv[i] = !rng.Bernoulli(mc.LossProb[state])
		state = sampleIndex(rng, mc.Transitions[state])
	}
}

func sampleIndex(rng *stats.RNG, dist []float64) int {
	u := rng.Float64()
	acc := 0.0
	for i, p := range dist {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(dist) - 1
}

// Rate implements Model: the stationary loss rate.
func (mc *MarkovChain) Rate() float64 {
	rate := 0.0
	for i, pi := range mc.stationary {
		rate += pi * mc.LossProb[i]
	}
	return rate
}

// Name implements Model.
func (mc *MarkovChain) Name() string {
	return fmt.Sprintf("markov(m=%d, rate=%.3g)", len(mc.Transitions), mc.Rate())
}

// AsMarkovChain converts a GilbertElliott model to its 2-state general
// form, for cross-checking the two implementations.
func (g GilbertElliott) AsMarkovChain() (*MarkovChain, error) {
	return NewMarkovChain(
		[][]float64{
			{1 - g.PGoodToBad, g.PGoodToBad},
			{g.PBadToGood, 1 - g.PBadToGood},
		},
		[]float64{g.PGood, g.PBad},
	)
}
