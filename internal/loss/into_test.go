package loss

import (
	"reflect"
	"testing"

	"mcauth/internal/stats"
)

// TestSampleIntoMatchesSample pins the Model contract that both entry
// points draw the same RNG stream: from equal generator states they must
// produce identical patterns.
func TestSampleIntoMatchesSample(t *testing.T) {
	ge, err := NewGilbertElliott(0.05, 0.3, 0.01, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrace([]bool{true, false, false, true})
	if err != nil {
		t.Fatal(err)
	}
	models := []Model{
		Bernoulli{P: 0.3},
		ge,
		SingleBurst{Length: 5},
		tr,
	}
	for _, m := range models {
		for _, n := range []int{1, 17, 64} {
			a := m.Sample(stats.NewRNG(99), n)
			b := make([]bool, n+1)
			m.SampleInto(stats.NewRNG(99), b)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s n=%d: Sample and SampleInto disagree", m.Name(), n)
			}
		}
	}
}
