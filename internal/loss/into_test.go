package loss

import (
	"reflect"
	"testing"

	"mcauth/internal/stats"
)

// TestSampleIntoMatchesSample pins the Model contract that both entry
// points draw the same RNG stream: from equal generator states they must
// produce identical patterns.
func TestSampleIntoMatchesSample(t *testing.T) {
	ge, err := NewGilbertElliott(0.05, 0.3, 0.01, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrace([]bool{true, false, false, true})
	if err != nil {
		t.Fatal(err)
	}
	models := []Model{
		Bernoulli{P: 0.3},
		ge,
		SingleBurst{Length: 5},
		tr,
	}
	for _, m := range models {
		for _, n := range []int{1, 17, 64} {
			a := m.Sample(stats.NewRNG(99), n)
			b := make([]bool, n+1)
			m.SampleInto(stats.NewRNG(99), b)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s n=%d: Sample and SampleInto disagree", m.Name(), n)
			}
		}
	}
}

// testModels builds one instance of every Model for contract tests.
func testModels(t *testing.T) []Model {
	t.Helper()
	ge, err := NewGilbertElliott(0.05, 0.3, 0.01, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrace([]bool{true, false, false, true})
	if err != nil {
		t.Fatal(err)
	}
	return []Model{Bernoulli{P: 0.3}, ge, SingleBurst{Length: 5}, tr}
}

// TestSampleIntoZeroLength: degenerate destinations (nil, empty, or the
// length-1 slice whose only cell is the unused index 0) must be no-ops,
// never panics. SingleBurst used to reach Intn(-1) on an empty slice.
func TestSampleIntoZeroLength(t *testing.T) {
	for _, m := range testModels(t) {
		for _, recv := range [][]bool{nil, {}, make([]bool, 1)} {
			m.SampleInto(stats.NewRNG(1), recv) // must not panic
		}
	}
}

// TestSampleIntoIndexZeroUntouched pins the 1-based contract: position 0
// belongs to the caller and is never written.
func TestSampleIntoIndexZeroUntouched(t *testing.T) {
	for _, m := range testModels(t) {
		recv := make([]bool, 9)
		recv[0] = true // sentinel
		m.SampleInto(stats.NewRNG(5), recv)
		if !recv[0] {
			t.Errorf("%s: SampleInto wrote index 0", m.Name())
		}
	}
}

// TestSampleIntoReuseOverwrites reuses one scratch slice across calls, as
// the Monte-Carlo hot loop does: every position 1..n must be rewritten,
// with no state leaking from the previous pattern.
func TestSampleIntoReuseOverwrites(t *testing.T) {
	for _, m := range testModels(t) {
		scratch := make([]bool, 33)
		// Poison with the complement of the expected pattern so any
		// stale cell is guaranteed to differ.
		want := m.Sample(stats.NewRNG(77), 32)
		for i := 1; i < len(scratch); i++ {
			scratch[i] = !want[i]
		}
		m.SampleInto(stats.NewRNG(77), scratch)
		if !reflect.DeepEqual(scratch[1:], want[1:]) {
			t.Errorf("%s: reused scratch differs from fresh sample", m.Name())
		}
	}
}

// TestSampleIntoShrinkingReuse runs the same model over progressively
// shorter prefixes of one backing array — the aliasing shape netsim's
// per-receiver buffers produce — and checks the tail beyond each length
// is left alone.
func TestSampleIntoShrinkingReuse(t *testing.T) {
	for _, m := range testModels(t) {
		backing := make([]bool, 17)
		for i := range backing {
			backing[i] = true
		}
		m.SampleInto(stats.NewRNG(3), backing[:9])
		tail := append([]bool(nil), backing[9:]...)
		m.SampleInto(stats.NewRNG(4), backing[:5])
		if !reflect.DeepEqual(backing[9:], tail) {
			t.Errorf("%s: write past the slice length", m.Name())
		}
	}
}
