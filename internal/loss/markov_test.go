package loss

import (
	"math"
	"testing"

	"mcauth/internal/stats"
)

func TestMarkovChainValidation(t *testing.T) {
	cases := []struct {
		name string
		tr   [][]float64
		lp   []float64
	}{
		{"empty", nil, nil},
		{"mismatched loss", [][]float64{{1}}, []float64{0.1, 0.2}},
		{"ragged row", [][]float64{{0.5, 0.5}, {1}}, []float64{0, 1}},
		{"row not stochastic", [][]float64{{0.5, 0.4}, {0.5, 0.5}}, []float64{0, 1}},
		{"negative entry", [][]float64{{1.1, -0.1}, {0.5, 0.5}}, []float64{0, 1}},
		{"loss out of range", [][]float64{{0.5, 0.5}, {0.5, 0.5}}, []float64{0, 1.5}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewMarkovChain(tt.tr, tt.lp); err == nil {
				t.Error("should fail validation")
			}
		})
	}
}

func TestMarkovChainMatchesGilbertElliott(t *testing.T) {
	ge, err := NewGilbertElliott(0.05, 0.3, 0.01, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := ge.AsMarkovChain()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc.Rate()-ge.Rate()) > 1e-9 {
		t.Errorf("rates differ: markov %v vs gilbert %v", mc.Rate(), ge.Rate())
	}
	st := mc.Stationary()
	if math.Abs(st[1]-ge.StationaryBad()) > 1e-9 {
		t.Errorf("stationary bad %v vs %v", st[1], ge.StationaryBad())
	}
	// Measured loss rates agree.
	rng := stats.NewRNG(1)
	count := func(m Model) float64 {
		lost := 0
		const trials, n = 1000, 200
		for i := 0; i < trials; i++ {
			recv := m.Sample(rng, n)
			for j := 1; j <= n; j++ {
				if !recv[j] {
					lost++
				}
			}
		}
		return float64(lost) / (1000 * 200)
	}
	if math.Abs(count(mc)-count(ge)) > 0.01 {
		t.Error("sampled rates diverge between equivalent models")
	}
}

func TestMarkovChainThreeState(t *testing.T) {
	// Good -> degraded -> outage cascade.
	tr := [][]float64{
		{0.95, 0.05, 0.00},
		{0.30, 0.60, 0.10},
		{0.20, 0.00, 0.80},
	}
	lp := []float64{0.01, 0.3, 1.0}
	mc, err := NewMarkovChain(tr, lp)
	if err != nil {
		t.Fatal(err)
	}
	st := mc.Stationary()
	sum := 0.0
	for _, p := range st {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("stationary sums to %v", sum)
	}
	// Stationarity: pi * P = pi.
	for j := range st {
		acc := 0.0
		for i := range st {
			acc += st[i] * tr[i][j]
		}
		if math.Abs(acc-st[j]) > 1e-9 {
			t.Errorf("stationary violated at state %d: %v vs %v", j, acc, st[j])
		}
	}
	// Measured rate matches analytic.
	rng := stats.NewRNG(2)
	lost := 0
	const trials, n = 2000, 100
	for i := 0; i < trials; i++ {
		recv := mc.Sample(rng, n)
		for j := 1; j <= n; j++ {
			if !recv[j] {
				lost++
			}
		}
	}
	measured := float64(lost) / (trials * n)
	if math.Abs(measured-mc.Rate()) > 0.01 {
		t.Errorf("measured %v vs analytic %v", measured, mc.Rate())
	}
}

func TestMarkovChainOutageBursts(t *testing.T) {
	// A sticky outage state must produce long loss runs.
	tr := [][]float64{
		{0.98, 0.02},
		{0.10, 0.90},
	}
	mc, err := NewMarkovChain(tr, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(3)
	longest := 0
	for trial := 0; trial < 200; trial++ {
		recv := mc.Sample(rng, 300)
		run := 0
		for i := 1; i <= 300; i++ {
			if !recv[i] {
				run++
				if run > longest {
					longest = run
				}
			} else {
				run = 0
			}
		}
	}
	if longest < 15 {
		t.Errorf("longest loss run %d; expected long outage bursts", longest)
	}
}

func TestMarkovChainName(t *testing.T) {
	mc, err := NewMarkovChain([][]float64{{1}}, []float64{0.25})
	if err != nil {
		t.Fatal(err)
	}
	if mc.Name() == "" {
		t.Error("empty name")
	}
	if math.Abs(mc.Rate()-0.25) > 1e-12 {
		t.Errorf("single-state rate %v, want 0.25", mc.Rate())
	}
}
