package loss

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"mcauth/internal/stats"
)

// testTree builds the canonical test topology: source -> two mid relays,
// each with two leaf relays, Bernoulli loss on every tree edge and a
// Bernoulli last hop. Receivers round-robin over leaves 3..6.
func testTree(t *testing.T, seed uint64, edgeP, leafP float64) *TreeModel {
	t.Helper()
	tree := NewTree(seed, Bernoulli{P: leafP})
	for _, parent := range []int{0, 0, 1, 1, 2, 2} {
		if _, err := tree.AddNode(parent, Bernoulli{P: edgeP}); err != nil {
			t.Fatal(err)
		}
	}
	return tree
}

// TestTreeTopology pins the structural accessors: node count, parents,
// leaf set, round-robin receiver attachment, and root paths.
func TestTreeTopology(t *testing.T) {
	tree := testTree(t, 1, 0.1, 0.1)
	if got := tree.Nodes(); got != 7 {
		t.Fatalf("Nodes() = %d, want 7", got)
	}
	if got := tree.Leaves(); !reflect.DeepEqual(got, []int{3, 4, 5, 6}) {
		t.Fatalf("Leaves() = %v, want [3 4 5 6]", got)
	}
	if got := tree.LeafFor(5); got != 4 {
		t.Fatalf("LeafFor(5) = %d, want 4", got)
	}
	if got := tree.Path(6); !reflect.DeepEqual(got, []int{2, 6}) {
		t.Fatalf("Path(6) = %v, want [2 6]", got)
	}
	if got := tree.Path(0); len(got) != 0 {
		t.Fatalf("Path(0) = %v, want empty", got)
	}
	if p := tree.Parent(0); p != -1 {
		t.Fatalf("Parent(0) = %d, want -1", p)
	}
	// A bare tree's only leaf is the source itself.
	if got := NewTree(9, nil).Leaves(); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("bare tree Leaves() = %v, want [0]", got)
	}
}

// TestUniformTree checks the complete-tree constructor's node count and
// shape, and the degenerate depths.
func TestUniformTree(t *testing.T) {
	tree, err := NewUniformTree(3, 2, 4, Bernoulli{P: 0.1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Nodes(); got != 1+4+16 {
		t.Fatalf("Nodes() = %d, want 21", got)
	}
	if got := len(tree.Leaves()); got != 16 {
		t.Fatalf("leaves = %d, want 16", got)
	}
	for _, leaf := range tree.Leaves() {
		if got := len(tree.Path(leaf)); got != 2 {
			t.Fatalf("leaf %d path length %d, want 2", leaf, got)
		}
	}
	flat, err := NewUniformTree(3, 0, 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Nodes() != 1 {
		t.Fatalf("depth-0 tree has %d nodes, want 1", flat.Nodes())
	}
	if _, err := NewUniformTree(3, -1, 2, nil, nil); err == nil {
		t.Fatal("negative depth accepted")
	}
	if _, err := NewUniformTree(3, 1, 0, nil, nil); err == nil {
		t.Fatal("zero fanout accepted")
	}
}

// TestTreeBuildErrors pins AddNode/SetEdge bounds checking.
func TestTreeBuildErrors(t *testing.T) {
	tree := NewTree(1, nil)
	if _, err := tree.AddNode(1, nil); err == nil {
		t.Fatal("AddNode under a missing parent accepted")
	}
	if _, err := tree.AddNode(-1, nil); err == nil {
		t.Fatal("AddNode under a negative parent accepted")
	}
	if err := tree.SetEdge(0, Bernoulli{P: 0.5}); err == nil {
		t.Fatal("SetEdge on the source accepted")
	}
	if err := tree.SetEdge(7, Bernoulli{P: 0.5}); err == nil {
		t.Fatal("SetEdge past the tree accepted")
	}
}

// TestTreeSharedFate is the correlation property that motivates the model:
// every receiver under one lossy edge loses the *identical* packet set.
// Here edge 1 (feeding the first mid relay) is the only lossy element, so
// receivers on leaves 3 and 4 — different last hops, different RNG streams
// — must still produce byte-identical patterns, while receivers under the
// other mid relay lose nothing.
func TestTreeSharedFate(t *testing.T) {
	tree := NewTree(42, nil)
	for _, parent := range []int{0, 0, 1, 1, 2, 2} {
		if _, err := tree.AddNode(parent, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.SetEdge(1, Bernoulli{P: 0.4}); err != nil {
		t.Fatal(err)
	}
	const n = 512
	// Receivers 0 and 1 sit on leaves 3 and 4, both under edge 1.
	under0 := tree.Receiver(0).Sample(stats.NewRNG(1000), n)
	under1 := tree.Receiver(1).Sample(stats.NewRNG(2000), n)
	if !reflect.DeepEqual(under0, under1) {
		t.Fatal("receivers under the same lossy edge diverge")
	}
	lost := 0
	for i := 1; i <= n; i++ {
		if !under0[i] {
			lost++
		}
	}
	if lost == 0 {
		t.Fatal("lossy edge lost nothing; test is vacuous")
	}
	// Receivers 2 and 3 sit on leaves 5 and 6, under the lossless branch.
	for r := 2; r <= 3; r++ {
		got := tree.Receiver(r).Sample(stats.NewRNG(uint64(r)), n)
		for i := 1; i <= n; i++ {
			if !got[i] {
				t.Fatalf("receiver %d under the lossless branch lost packet %d", r, i)
			}
		}
	}
}

// TestTreeMarginalRate: sampling receiver marginals over many independent
// trials, the per-receiver loss rate must converge to
// 1 - prod(1 - p_e) over the path edges and last hop — and Rate() must
// report that same product form exactly.
func TestTreeMarginalRate(t *testing.T) {
	const (
		edgeP  = 0.05
		leafP  = 0.1
		n      = 64
		trials = 4000
	)
	tree := testTree(t, 7, edgeP, leafP)
	want := 1 - (1-edgeP)*(1-edgeP)*(1-leafP) // two tree edges + last hop
	m := tree.Marginal(0)
	if got := m.Rate(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Rate() = %v, want %v", got, want)
	}
	rng := stats.NewRNG(123)
	recv := make([]bool, n+1)
	lost := 0
	for trial := 0; trial < trials; trial++ {
		m.SampleInto(rng, recv)
		for i := 1; i <= n; i++ {
			if !recv[i] {
				lost++
			}
		}
	}
	got := float64(lost) / float64(trials*n)
	// 4 sigma over trials*n Bernoulli draws.
	tol := 4 * math.Sqrt(want*(1-want)/float64(trials*n))
	if math.Abs(got-want) > tol {
		t.Fatalf("marginal loss rate %v, want %v +- %v", got, want, tol)
	}
}

// TestTreeFlatParity: with lossless tree edges the composed receiver model
// must be bit-identical to the bare last-hop model — same pattern AND the
// same number of RNG draws, so downstream draws stay aligned too. This is
// the property RunOverlay leans on to reproduce flat netsim numbers with
// relays off.
func TestTreeFlatParity(t *testing.T) {
	leaf, err := NewGilbertElliott(0.05, 0.3, 0.01, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	tree := NewTree(11, leaf)
	for _, parent := range []int{0, 0, 1, 2} {
		if _, err := tree.AddNode(parent, nil); err != nil {
			t.Fatal(err)
		}
	}
	const n = 96
	for _, mk := range []func(int) Model{tree.Receiver, tree.Marginal} {
		for r := 0; r < 3; r++ {
			rngTree := stats.NewRNG(500 + uint64(r))
			rngFlat := stats.NewRNG(500 + uint64(r))
			a := mk(r).Sample(rngTree, n)
			b := leaf.Sample(rngFlat, n)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("receiver %d: lossless-edge tree pattern differs from flat leaf model", r)
			}
			if rngTree.Uint64() != rngFlat.Uint64() {
				t.Fatalf("receiver %d: tree model consumed a different number of RNG draws", r)
			}
		}
	}
}

// TestTreeDeterminism: the shared edge patterns come from the tree seed,
// so re-sampling any receiver from an equal RNG state — sequentially or
// from many goroutines at once — reproduces the identical pattern. This is
// the property that makes RunOverlay byte-identical at any worker count.
func TestTreeDeterminism(t *testing.T) {
	tree := testTree(t, 99, 0.15, 0.2)
	const (
		n         = 128
		receivers = 8
	)
	want := make([][]bool, receivers)
	for r := range want {
		want[r] = tree.Receiver(r).Sample(stats.NewRNG(uint64(r)*13+1), n)
	}
	// Re-sample every receiver concurrently; each goroutine derives its
	// own treePath (the per-receiver models hold scratch and are not
	// shared), mimicking the netsim worker pool at a high worker count.
	var wg sync.WaitGroup
	got := make([][]bool, receivers)
	for r := 0; r < receivers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			got[r] = tree.Receiver(r).Sample(stats.NewRNG(uint64(r)*13+1), n)
		}(r)
	}
	wg.Wait()
	for r := range want {
		if !reflect.DeepEqual(got[r], want[r]) {
			t.Fatalf("receiver %d: concurrent resample diverged", r)
		}
	}
}

// treeTestModels builds tree-derived Models for the SampleInto contract
// tests below, covering shared and marginal modes, lossy and lossless
// edges.
func treeTestModels(t *testing.T) []Model {
	t.Helper()
	lossy := testTree(t, 5, 0.2, 0.3)
	clean := testTree(t, 5, 0, 0.3)
	return []Model{
		lossy.Receiver(0),
		lossy.Marginal(1),
		clean.Receiver(2),
		clean.Marginal(3),
	}
}

// TestTreeSampleIntoMatchesSample mirrors TestSampleIntoMatchesSample:
// both entry points must draw the same RNG stream.
func TestTreeSampleIntoMatchesSample(t *testing.T) {
	for _, m := range treeTestModels(t) {
		for _, n := range []int{1, 17, 64} {
			a := m.Sample(stats.NewRNG(99), n)
			b := make([]bool, n+1)
			m.SampleInto(stats.NewRNG(99), b)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s n=%d: Sample and SampleInto disagree", m.Name(), n)
			}
		}
	}
}

// TestTreeSampleIntoZeroLength mirrors TestSampleIntoZeroLength:
// degenerate destinations are no-ops, never panics — and draw nothing, so
// the caller's RNG stream stays aligned.
func TestTreeSampleIntoZeroLength(t *testing.T) {
	for _, m := range treeTestModels(t) {
		for _, recv := range [][]bool{nil, {}, make([]bool, 1)} {
			rng := stats.NewRNG(1)
			before := stats.NewRNG(1).Uint64()
			m.SampleInto(rng, recv) // must not panic
			if got := rng.Uint64(); got != before {
				t.Fatalf("%s: zero-length SampleInto consumed RNG draws", m.Name())
			}
		}
	}
	tree := testTree(t, 5, 0.2, 0.3)
	for _, recv := range [][]bool{nil, {}, make([]bool, 1)} {
		tree.EdgePatternInto(1, recv) // must not panic
	}
}

// TestTreeSampleIntoIndexZeroUntouched mirrors the 1-based contract.
func TestTreeSampleIntoIndexZeroUntouched(t *testing.T) {
	for _, m := range treeTestModels(t) {
		recv := make([]bool, 9)
		recv[0] = true // sentinel
		m.SampleInto(stats.NewRNG(5), recv)
		if !recv[0] {
			t.Errorf("%s: SampleInto wrote index 0", m.Name())
		}
	}
}

// TestTreeSampleIntoReuseOverwrites mirrors the scratch-reuse contract:
// every position 1..n is rewritten with no state leaking between calls.
func TestTreeSampleIntoReuseOverwrites(t *testing.T) {
	for _, m := range treeTestModels(t) {
		scratch := make([]bool, 33)
		want := m.Sample(stats.NewRNG(77), 32)
		for i := 1; i < len(scratch); i++ {
			scratch[i] = !want[i]
		}
		m.SampleInto(stats.NewRNG(77), scratch)
		if !reflect.DeepEqual(scratch[1:], want[1:]) {
			t.Errorf("%s: reused scratch differs from fresh sample", m.Name())
		}
	}
}

// TestTreeSampleIntoShrinkingReuse mirrors the aliasing shape netsim's
// per-receiver buffers produce: progressively shorter prefixes of one
// backing array, tail beyond each length untouched. The tree models also
// reuse an internal scratch slice across these calls, so this doubles as
// a scratch-shrink regression test.
func TestTreeSampleIntoShrinkingReuse(t *testing.T) {
	for _, m := range treeTestModels(t) {
		backing := make([]bool, 17)
		for i := range backing {
			backing[i] = true
		}
		m.SampleInto(stats.NewRNG(3), backing[:9])
		tail := append([]bool(nil), backing[9:]...)
		m.SampleInto(stats.NewRNG(4), backing[:5])
		if !reflect.DeepEqual(backing[9:], tail) {
			t.Errorf("%s: write past the slice length", m.Name())
		}
	}
}
