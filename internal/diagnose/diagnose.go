// Package diagnose joins a run's packet-lifecycle trace (internal/obs
// JSONL events) with the scheme's dependence graph to answer, for every
// packet that failed to authenticate at a receiver, *why* — attributing
// each failure to exactly one root cause from a closed taxonomy, and, for
// hash-path cuts, to the minimal set of lost predecessor packets whose
// re-delivery would restore the authentication path (the frontier cut of
// internal/depgraph).
//
// The join is deliberately order-independent: netsim's receivers run in
// parallel, so the event order of two identical-seed traces differs, but
// the per-(receiver, index) flag sets and additive histogram counts built
// here do not. Two traces of the same run therefore diagnose to the same
// result, byte for byte — which is what makes report diffing meaningful.
package diagnose

import (
	"fmt"
	"sort"

	"mcauth/internal/depgraph"
	"mcauth/internal/obs"
)

// Cause is a root-cause class for one unauthenticated packet. Every
// unauthenticated (receiver, index) pair is assigned exactly one Cause.
type Cause string

const (
	// CausePacketLost: the packet never genuinely arrived — channel loss,
	// late join, or a fault mutation that destroyed the datagram framing.
	CausePacketLost Cause = "packet-lost"
	// CauseSignatureLost: the packet arrived, but the block's signature
	// packet never authenticated at this receiver, so no trust could flow
	// to anything.
	CauseSignatureLost Cause = "signature-lost"
	// CauseHashPathCut: the packet and the signature both arrived, but
	// every root-to-packet path in the dependence graph runs through a
	// lost packet. The diagnosis carries the frontier-cut culprit set.
	CauseHashPathCut Cause = "hash-path-cut"
	// CauseBufferDrop: the verifier's bounded message buffer was full when
	// the packet arrived and it was discarded (the DoS guard).
	CauseBufferDrop Cause = "dropped-by-bounded-buffer"
	// CauseRejected: the verifier refused the packet — bad signature,
	// digest mismatch, bad MAC — i.e. corruption or forgery.
	CauseRejected Cause = "rejected-corrupt/forged"
	// CauseDeadline: TESLA only — the packet arrived after its key's
	// disclosure deadline and was dropped by the safety condition.
	CauseDeadline Cause = "deadline-exceeded"
)

// CauseOrder fixes the rendering order of causes in reports.
var CauseOrder = []Cause{
	CausePacketLost,
	CauseRejected,
	CauseDeadline,
	CauseBufferDrop,
	CauseSignatureLost,
	CauseHashPathCut,
}

// Options configures the trace→graph join.
type Options struct {
	// Graph is the scheme's dependence graph; nil disables culprit
	// attribution (hash-path-cut diagnoses then carry no culprit set).
	Graph *depgraph.Graph
	// VertexOf maps a wire authentication index onto a graph vertex
	// (scheme.VertexMapper.VertexOf). Required alongside Graph; schemes
	// without a sound mapping (TESLA's split encoding) leave both nil.
	VertexOf func(index uint32) (int, bool)
	// RootIndex is the wire index of the signature/bootstrap packet. 0
	// means "take it from the trace's run_meta event"; if neither is set,
	// the signature-lost cause is never assigned.
	RootIndex uint32
	// DataIndices restricts diagnosis to these wire indices (e.g. to
	// exclude TESLA's trailing key-only packets, which never authenticate
	// by design). nil diagnoses every index seen on the wire.
	DataIndices []uint32
}

// PacketDiagnosis is the verdict for one unauthenticated packet at one
// receiver.
type PacketDiagnosis struct {
	Receiver int    `json:"receiver"`
	Index    uint32 `json:"index"`
	Cause    Cause  `json:"cause"`
	// Reason carries the trace-level detail behind the cause: "loss" or
	// "late_join" for packet-lost, "digest_mismatch"/"bad_mac"/... for
	// rejections, "deadline" for unsafe drops.
	Reason string `json:"reason,omitempty"`
	// Culprits lists, for hash-path-cut, the wire indices of the lost
	// packets on the verified frontier whose re-delivery would advance
	// this packet's authentication (ascending).
	Culprits []uint32 `json:"culprits,omitempty"`
}

// pktState folds every event about one (receiver, index) pair into
// order-independent flags: each field is a monotone "has this ever
// happened" bit (or a first-writer-wins reason string), so the fold result
// does not depend on event order within the pair, and pairs are
// independent of each other.
type pktState struct {
	deliveredGenuine bool
	// deliveredFaulty marks a delivery of a mutated or forged copy of
	// this index (the delivered event carried a fault kind).
	deliveredFaulty bool
	faultyReason    string
	dropReason      string
	authenticated   bool
	rejected        bool
	rejectReason    string
	unsafe          bool
	unsafeReason    string
	overflow        bool
}

// runState is everything the classifier and the report builder need,
// extracted from the raw event stream in one pass.
type runState struct {
	scheme    string
	wireCount int
	rootIndex uint32
	hasMeta   bool

	indices   []uint32 // indices seen in sent events, ascending unique
	receivers []int    // receiver IDs seen, ascending

	// pkts[r][index] is the folded per-packet state.
	pkts map[int]map[uint32]*pktState

	// Aggregates (all additive, so order-independent).
	sent           int
	timeToAuth     obs.HistogramData
	bufferDepth    obs.HistogramData
	corrupted      int
	truncated      int
	forgedInjected int
	forgedRejected int
	overflowDrops  int
}

func (rs *runState) pkt(recv int, index uint32) *pktState {
	m := rs.pkts[recv]
	if m == nil {
		m = make(map[uint32]*pktState)
		rs.pkts[recv] = m
	}
	st := m[index]
	if st == nil {
		st = &pktState{}
		m[index] = st
	}
	return st
}

// collect folds the event stream into runState.
func collect(events []obs.Event) *runState {
	rs := &runState{pkts: make(map[int]map[uint32]*pktState)}
	indexSet := make(map[uint32]bool)
	recvSet := make(map[int]bool)
	for i := range events {
		e := &events[i]
		if e.Receiver >= 0 {
			recvSet[e.Receiver] = true
		}
		switch e.Type {
		case obs.EventRunMeta:
			rs.hasMeta = true
			rs.scheme = e.Scheme
			rs.wireCount = e.Wire
			rs.rootIndex = e.Root
			continue
		case obs.EventSent:
			rs.sent++
			if e.Index > 0 {
				indexSet[e.Index] = true
			}
			continue
		}
		if e.Receiver < 0 || e.Index == 0 {
			// Receiver-side bookkeeping events without an index (e.g.
			// TESLA key-chain rejections) cannot be attributed to a
			// packet; they still shaped the counters above.
			continue
		}
		st := rs.pkt(e.Receiver, e.Index)
		switch e.Type {
		case obs.EventDelivered:
			if e.Reason == "" { // non-genuine arrivals carry their fault kind
				st.deliveredGenuine = true
			} else {
				st.deliveredFaulty = true
				if st.faultyReason == "" {
					st.faultyReason = e.Reason
				}
			}
		case obs.EventDropped:
			if st.dropReason == "" || e.Reason == "loss" {
				// Prefer the channel-loss reason when several wire copies
				// of the index died different deaths.
				st.dropReason = e.Reason
			}
		case obs.EventAuthenticated:
			st.authenticated = true
			rs.timeToAuth.Observe(e.LatencyNS)
		case obs.EventRejected:
			st.rejected = true
			if st.rejectReason == "" {
				st.rejectReason = e.Reason
			}
		case obs.EventUnsafe:
			st.unsafe = true
			if st.unsafeReason == "" {
				st.unsafeReason = e.Reason
			}
		case obs.EventOverflowDropped:
			st.overflow = true
			rs.overflowDrops++
		case obs.EventMsgBuffered:
			rs.bufferDepth.Observe(int64(e.Depth))
		case obs.EventCorrupted:
			if e.Reason == "truncated" {
				rs.truncated++
			} else {
				rs.corrupted++
			}
		case obs.EventForgedInjected:
			rs.forgedInjected++
		case obs.EventForgedRejected:
			rs.forgedRejected++
		}
	}
	for idx := range indexSet {
		rs.indices = append(rs.indices, idx)
	}
	sort.Slice(rs.indices, func(i, j int) bool { return rs.indices[i] < rs.indices[j] })
	for r := range recvSet {
		rs.receivers = append(rs.receivers, r)
	}
	sort.Ints(rs.receivers)
	if rs.wireCount == 0 {
		rs.wireCount = rs.sent
	}
	return rs
}

// scope returns the indices to diagnose: the caller's DataIndices when
// set, otherwise every index seen on the wire.
func (o Options) scope(rs *runState) []uint32 {
	if o.DataIndices == nil {
		return rs.indices
	}
	out := append([]uint32(nil), o.DataIndices...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Diagnose classifies every unauthenticated packet of the traced run into
// exactly one root cause, sorted by (receiver, index). Classification is
// first-match-wins down the failure chain a packet traverses: it must
// arrive, be accepted, beat its deadline, fit the buffer, and then have an
// intact authentication path — the first stage that failed is the cause.
func Diagnose(events []obs.Event, opts Options) ([]PacketDiagnosis, error) {
	rs := collect(events)
	return diagnose(rs, opts)
}

func diagnose(rs *runState, opts Options) ([]PacketDiagnosis, error) {
	if (opts.Graph == nil) != (opts.VertexOf == nil) {
		return nil, fmt.Errorf("diagnose: Graph and VertexOf must be set together")
	}
	rootIndex := opts.RootIndex
	if rootIndex == 0 {
		rootIndex = rs.rootIndex
	}
	indices := opts.scope(rs)

	// Invert the wire→vertex mapping once, to name culprit vertices by
	// their wire index in the output.
	var indexOfVertex map[int]uint32
	if opts.Graph != nil {
		indexOfVertex = make(map[int]uint32, len(rs.indices))
		for _, idx := range rs.indices {
			if v, ok := opts.VertexOf(idx); ok {
				if prev, dup := indexOfVertex[v]; !dup || idx < prev {
					indexOfVertex[v] = idx
				}
			}
		}
	}

	var out []PacketDiagnosis
	for _, recv := range rs.receivers {
		states := rs.pkts[recv]
		var finder *depgraph.CulpritFinder // built lazily: only cut diagnoses pay for it
		for _, idx := range indices {
			st := states[idx]
			if st == nil {
				st = &pktState{}
			}
			if st.authenticated {
				continue
			}
			d := PacketDiagnosis{Receiver: recv, Index: idx}
			switch {
			case !st.deliveredGenuine && st.deliveredFaulty && st.rejected:
				// The only copy that arrived was mutated or forged and the
				// verifier refused it — corruption, not channel loss.
				d.Cause, d.Reason = CauseRejected, firstNonEmpty(st.rejectReason, st.faultyReason)
			case !st.deliveredGenuine:
				d.Cause, d.Reason = CausePacketLost, firstNonEmpty(st.dropReason, st.faultyReason)
			case st.rejected:
				d.Cause, d.Reason = CauseRejected, st.rejectReason
			case st.unsafe:
				d.Cause, d.Reason = CauseDeadline, st.unsafeReason
			case st.overflow:
				d.Cause = CauseBufferDrop
			case rootIndex != 0 && !stateAuthenticated(states, rootIndex):
				d.Cause = CauseSignatureLost
			default:
				d.Cause = CauseHashPathCut
				if opts.Graph != nil {
					if finder == nil {
						var err error
						finder, err = newFinder(opts, rs, states)
						if err != nil {
							return nil, err
						}
					}
					culprits, err := cutCulprits(opts, finder, indexOfVertex, idx)
					if err != nil {
						return nil, err
					}
					d.Culprits = culprits
				}
			}
			out = append(out, d)
		}
	}
	return out, nil
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

func stateAuthenticated(states map[uint32]*pktState, index uint32) bool {
	st := states[index]
	return st != nil && st.authenticated
}

// newFinder builds the receiver's graph-side receive pattern — vertex v was
// received iff some wire index mapping to v genuinely arrived — and the
// culprit finder over it.
func newFinder(opts Options, rs *runState, states map[uint32]*pktState) (*depgraph.CulpritFinder, error) {
	received := make([]bool, opts.Graph.N()+1)
	for _, idx := range rs.indices {
		st := states[idx]
		if st == nil || !st.deliveredGenuine {
			continue
		}
		if v, ok := opts.VertexOf(idx); ok && v >= 1 && v <= opts.Graph.N() {
			received[v] = true
		}
	}
	return opts.Graph.NewCulpritFinder(received)
}

func cutCulprits(opts Options, finder *depgraph.CulpritFinder, indexOfVertex map[int]uint32, idx uint32) ([]uint32, error) {
	target, ok := opts.VertexOf(idx)
	if !ok {
		return nil, nil
	}
	vs, err := finder.Culprits(target)
	if err != nil {
		return nil, err
	}
	culprits := make([]uint32, 0, len(vs))
	for _, v := range vs {
		if wi, ok := indexOfVertex[v]; ok {
			culprits = append(culprits, wi)
		} else {
			// Vertex never appeared on the wire under any seen index;
			// fall back to the vertex number (identity-mapped schemes).
			culprits = append(culprits, uint32(v))
		}
	}
	sort.Slice(culprits, func(i, j int) bool { return culprits[i] < culprits[j] })
	return culprits, nil
}
