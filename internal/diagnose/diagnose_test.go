package diagnose

import (
	"bytes"
	"slices"
	"testing"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/delay"
	"mcauth/internal/depgraph"
	"mcauth/internal/fault"
	"mcauth/internal/loss"
	"mcauth/internal/netsim"
	"mcauth/internal/obs"
	"mcauth/internal/scheme"
	"mcauth/internal/scheme/emss"
)

// chainGraph builds 1 -> 2 -> ... -> n rooted at 1.
func chainGraph(t *testing.T, n int) *depgraph.Graph {
	t.Helper()
	g, err := depgraph.New(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	return g
}

func identity(index uint32) (int, bool) { return int(index), true }

// TestClassificationSynthetic drives each cause through a hand-built
// event stream: one receiver, a 5-packet chain rooted at packet 1.
func TestClassificationSynthetic(t *testing.T) {
	sent := func(idx uint32) obs.Event {
		return obs.Event{Type: obs.EventSent, Receiver: -1, Wire: int(idx), Index: idx}
	}
	ev := func(typ obs.EventType, idx uint32, reason string) obs.Event {
		return obs.Event{Type: typ, Receiver: 0, Index: idx, Reason: reason}
	}
	events := []obs.Event{
		{Type: obs.EventRunMeta, Receiver: -1, Scheme: "test", Wire: 6, Root: 1},
		sent(1), sent(2), sent(3), sent(4), sent(5), sent(6),
		// 1 (root): delivered + authenticated.
		ev(obs.EventDelivered, 1, ""), ev(obs.EventAuthenticated, 1, ""),
		// 2: lost on the channel.
		ev(obs.EventDropped, 2, "loss"),
		// 3: delivered but rejected (tampered).
		ev(obs.EventDelivered, 3, ""), ev(obs.EventRejected, 3, "digest_mismatch"),
		// 4: delivered but dropped by the bounded buffer.
		ev(obs.EventDelivered, 4, ""), ev(obs.EventOverflowDropped, 4, ""),
		// 5: delivered, path cut by the loss of 2.
		ev(obs.EventDelivered, 5, ""),
		// 6: delivered past its TESLA deadline.
		ev(obs.EventDelivered, 6, ""), ev(obs.EventUnsafe, 6, "deadline"),
	}
	g := chainGraph(t, 6)
	diags, err := Diagnose(events, Options{Graph: g, VertexOf: identity})
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint32]Cause{
		2: CausePacketLost,
		3: CauseRejected,
		4: CauseBufferDrop,
		5: CauseHashPathCut,
		6: CauseDeadline,
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnoses, want %d: %+v", len(diags), len(want), diags)
	}
	for _, d := range diags {
		if want[d.Index] != d.Cause {
			t.Errorf("index %d: cause %s, want %s", d.Index, d.Cause, want[d.Index])
		}
		if d.Index == 5 && !slices.Equal(d.Culprits, []uint32{2}) {
			t.Errorf("index 5 culprits = %v, want [2]", d.Culprits)
		}
	}
}

// TestSignatureLost: nothing at the receiver can authenticate because the
// root itself never did.
func TestSignatureLost(t *testing.T) {
	events := []obs.Event{
		{Type: obs.EventRunMeta, Receiver: -1, Scheme: "test", Wire: 3, Root: 1},
		{Type: obs.EventSent, Receiver: -1, Wire: 1, Index: 1},
		{Type: obs.EventSent, Receiver: -1, Wire: 2, Index: 2},
		{Type: obs.EventSent, Receiver: -1, Wire: 3, Index: 3},
		{Type: obs.EventDropped, Receiver: 0, Index: 1, Reason: "loss"},
		{Type: obs.EventDelivered, Receiver: 0, Index: 2},
		{Type: obs.EventDelivered, Receiver: 0, Index: 3},
	}
	diags, err := Diagnose(events, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantCauses := map[uint32]Cause{
		1: CausePacketLost,
		2: CauseSignatureLost,
		3: CauseSignatureLost,
	}
	for _, d := range diags {
		if wantCauses[d.Index] != d.Cause {
			t.Errorf("index %d: cause %s, want %s", d.Index, d.Cause, wantCauses[d.Index])
		}
	}
	if len(diags) != 3 {
		t.Fatalf("got %d diagnoses, want 3", len(diags))
	}
}

func emssScheme(t *testing.T, n int) *scheme.Chained {
	t.Helper()
	s, err := emss.New(emss.Config{N: n, M: 2, D: 1}, crypto.NewSignerFromString("diag"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func runTraced(t *testing.T, s scheme.Scheme, cfg netsim.Config, n int) (*netsim.Result, []obs.Event) {
	t.Helper()
	mem := &obs.MemTracer{}
	cfg.Tracer = mem
	payloads := make([][]byte, n)
	for i := range payloads {
		payloads[i] = []byte{byte(i)}
	}
	res, err := netsim.Run(s, cfg, 1, payloads)
	if err != nil {
		t.Fatal(err)
	}
	return res, mem.Events()
}

func lossyConfig(t *testing.T, p float64, receivers int, seed uint64, root uint32) netsim.Config {
	t.Helper()
	m, err := loss.NewBernoulli(p)
	if err != nil {
		t.Fatal(err)
	}
	return netsim.Config{
		Receivers:       receivers,
		Loss:            m,
		Delay:           delay.Constant{D: 3 * time.Millisecond},
		SendInterval:    5 * time.Millisecond,
		Start:           time.Unix(9000, 0),
		Seed:            seed,
		ReliableIndices: []uint32{root},
	}
}

func diagnoseOptions(t *testing.T, s *scheme.Chained) Options {
	t.Helper()
	g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	return Options{Graph: g, VertexOf: s.VertexOf}
}

// TestNetsimGroundTruth joins a real lossy run's trace against the graph
// and checks the diagnosis against the simulator's own per-receiver
// outcome: every unauthenticated packet gets exactly one cause, and every
// hash-path-cut culprit set matches an independently computed frontier
// cut over the receiver's true receive pattern.
func TestNetsimGroundTruth(t *testing.T) {
	const n, receivers = 24, 16
	s := emssScheme(t, n)
	res, events := runTraced(t, s, lossyConfig(t, 0.3, receivers, 7, uint32(n)), n)

	opts := diagnoseOptions(t, s)
	diags, err := Diagnose(events, opts)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[[2]int]int)
	for _, d := range diags {
		seen[[2]int{d.Receiver, int(d.Index)}]++
	}
	cut := 0
	for r := range res.PerReceiver {
		rep := &res.PerReceiver[r]
		for idx := uint32(1); idx <= uint32(n); idx++ {
			key := [2]int{r, int(idx)}
			if rep.Verified(idx) {
				if seen[key] != 0 {
					t.Errorf("receiver %d index %d: authenticated but diagnosed", r, idx)
				}
				continue
			}
			if seen[key] != 1 {
				t.Errorf("receiver %d index %d: %d diagnoses, want exactly 1", r, idx, seen[key])
			}
		}
	}
	// Validate culprit sets against the graph directly.
	for _, d := range diags {
		rep := &res.PerReceiver[d.Receiver]
		if d.Cause == CausePacketLost && rep.Received(d.Index) {
			t.Errorf("receiver %d index %d: diagnosed lost but simulator says received", d.Receiver, d.Index)
		}
		if d.Cause != CauseHashPathCut {
			continue
		}
		cut++
		received := make([]bool, n+1)
		for i := 1; i <= n; i++ {
			received[i] = rep.Received(uint32(i))
		}
		want, err := opts.Graph.FrontierCut(received, int(d.Index))
		if err != nil {
			t.Fatal(err)
		}
		got := make([]int, len(d.Culprits))
		for i, c := range d.Culprits {
			got[i] = int(c)
		}
		if !slices.Equal(got, want) {
			t.Errorf("receiver %d index %d: culprits %v, want %v", d.Receiver, d.Index, got, want)
		}
	}
	if cut == 0 {
		t.Error("run produced no hash-path-cut diagnoses; loss rate too low to exercise culprits")
	}
}

// TestFaultPresetRun diagnoses a corruption-preset chaos run: corrupted
// deliveries must surface as rejected-corrupt/forged (or packet-lost when
// the mutation killed the framing), never as hash-path-cut mysteries, and
// the fault counters must reach the report.
func TestFaultPresetRun(t *testing.T) {
	const n, receivers = 16, 8
	s := emssScheme(t, n)
	fc, err := fault.Preset("corruption", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := lossyConfig(t, 0.1, receivers, 21, uint32(n))
	cfg.Faults = &fc
	res, events := runTraced(t, s, cfg, n)

	rep, err := BuildReport(events, 0, diagnoseOptions(t, s))
	if err != nil {
		t.Fatal(err)
	}
	totals := res.FaultTotals()
	if rep.Faults.Corrupted != totals.Corrupted || rep.Faults.Truncated != totals.Truncated {
		t.Errorf("report faults %+v, simulator %+v", rep.Faults, totals)
	}
	if totals.Corrupted > 0 && rep.Causes[CauseRejected] == 0 {
		t.Error("corruption run produced no rejected-corrupt/forged diagnoses")
	}
	for _, d := range rep.Diagnoses {
		rp := &res.PerReceiver[d.Receiver]
		if rp.Verified(d.Index) {
			t.Errorf("receiver %d index %d: authenticated but diagnosed %s", d.Receiver, d.Index, d.Cause)
		}
	}
	// Every unauthenticated data packet is diagnosed exactly once.
	for r := range res.PerReceiver {
		rp := &res.PerReceiver[r]
		unauthed := 0
		for idx := uint32(1); idx <= uint32(n); idx++ {
			if !rp.Verified(idx) {
				unauthed++
			}
		}
		got := 0
		for _, d := range rep.Diagnoses {
			if d.Receiver == r {
				got++
			}
		}
		if got != unauthed {
			t.Errorf("receiver %d: %d diagnoses, want %d", r, got, unauthed)
		}
	}
}

// TestReportDeterminism runs the same seed twice: the two traces differ in
// event order (parallel receivers) but must produce byte-identical JSON
// reports and an empty diff.
func TestReportDeterminism(t *testing.T) {
	const n, receivers = 20, 12
	s := emssScheme(t, n)
	render := func() (*Report, []byte) {
		_, events := runTraced(t, s, lossyConfig(t, 0.35, receivers, 99, uint32(n)), n)
		rep, err := BuildReport(events, 0, diagnoseOptions(t, s))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return rep, buf.Bytes()
	}
	repA, jsonA := render()
	repB, jsonB := render()
	if diff := Diff(repA, repB); len(diff) != 0 {
		t.Errorf("identical-seed reports differ:\n%v", diff)
	}
	if !bytes.Equal(jsonA, jsonB) {
		t.Error("identical-seed reports render to different JSON")
	}
	// Text and markdown renderings must not error.
	var buf bytes.Buffer
	if err := repA.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := repA.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestDiffReportsChanges flags a doctored report.
func TestDiffReportsChanges(t *testing.T) {
	const n = 12
	s := emssScheme(t, n)
	_, events := runTraced(t, s, lossyConfig(t, 0.3, 6, 5, uint32(n)), n)
	repA, err := BuildReport(events, 0, diagnoseOptions(t, s))
	if err != nil {
		t.Fatal(err)
	}
	repB, err := BuildReport(events, 0, diagnoseOptions(t, s))
	if err != nil {
		t.Fatal(err)
	}
	repB.Authenticated++
	repB.Causes[CausePacketLost]++
	if diff := Diff(repA, repB); len(diff) < 2 {
		t.Errorf("doctored report diff too small: %v", diff)
	}
}

// TestDataIndicesScope restricts diagnosis to a subset of indices.
func TestDataIndicesScope(t *testing.T) {
	events := []obs.Event{
		{Type: obs.EventSent, Receiver: -1, Wire: 1, Index: 1},
		{Type: obs.EventSent, Receiver: -1, Wire: 2, Index: 2},
		{Type: obs.EventSent, Receiver: -1, Wire: 3, Index: 3},
		{Type: obs.EventDropped, Receiver: 0, Index: 1, Reason: "loss"},
		{Type: obs.EventDropped, Receiver: 0, Index: 2, Reason: "loss"},
		{Type: obs.EventDropped, Receiver: 0, Index: 3, Reason: "loss"},
	}
	diags, err := Diagnose(events, Options{DataIndices: []uint32{2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Index != 2 || diags[0].Cause != CausePacketLost {
		t.Fatalf("scoped diagnosis = %+v, want exactly index 2 packet-lost", diags)
	}
}

// TestOptionsValidation rejects a graph without a vertex mapping.
func TestOptionsValidation(t *testing.T) {
	g := chainGraph(t, 3)
	if _, err := Diagnose(nil, Options{Graph: g}); err == nil {
		t.Error("Graph without VertexOf accepted")
	}
	if _, err := Diagnose(nil, Options{VertexOf: identity}); err == nil {
		t.Error("VertexOf without Graph accepted")
	}
}
