package diagnose

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mcauth/internal/obs"
)

// QuantileSet condenses a histogram for the report: deterministic for a
// given set of observations because it is computed from the additive
// bucket counts, never from observation order.
type QuantileSet struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   int64   `json:"max"`
}

func quantiles(h obs.HistogramData) QuantileSet {
	qs := QuantileSet{
		Count: h.Count,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	if h.Count > 0 {
		qs.Max = h.MaxSeen
	}
	return qs
}

// PositionStat is the authentication outcome of one wire index across
// receivers: the empirical q_i of the paper, by block position.
type PositionStat struct {
	Index         uint32  `json:"index"`
	Received      int     `json:"received"`
	Authenticated int     `json:"authenticated"`
	AuthRatio     float64 `json:"auth_ratio"`
}

// CulpritCount ranks a culprit wire index by how many hash-path-cut
// diagnoses (across all receivers) blame it.
type CulpritCount struct {
	Index uint32 `json:"index"`
	Count int    `json:"count"`
}

// FaultCounts tallies the adversarial-channel events seen in the trace.
type FaultCounts struct {
	Corrupted      int `json:"corrupted,omitempty"`
	Truncated      int `json:"truncated,omitempty"`
	ForgedInjected int `json:"forged_injected,omitempty"`
	ForgedRejected int `json:"forged_rejected,omitempty"`
}

// Report is the full root-cause analysis of one traced run. Its JSON
// encoding is deterministic: slices are sorted, maps have string keys
// (encoding/json sorts those), and every aggregate is computed from
// order-independent folds of the trace.
type Report struct {
	Scheme    string `json:"scheme,omitempty"`
	WireCount int    `json:"wire_count"`
	Receivers int    `json:"receivers"`
	RootIndex uint32 `json:"root_index,omitempty"`
	// SkippedTraceLines counts undecodable lines the trace reader skipped
	// (obs.ReadJSONL); nonzero means the analysis ran on a damaged trace.
	SkippedTraceLines int `json:"skipped_trace_lines,omitempty"`

	Sent            int `json:"sent"`
	Delivered       int `json:"delivered"`
	Authenticated   int `json:"authenticated"`
	Unauthenticated int `json:"unauthenticated"`

	// Causes maps each root cause to its diagnosis count.
	Causes map[Cause]int `json:"causes"`
	// TopCulprits ranks lost packets by how many hash-path-cut failures
	// blame them (descending count, ascending index; at most 10).
	TopCulprits []CulpritCount `json:"top_culprits,omitempty"`
	// ByPosition is the per-wire-index outcome over the diagnosis scope.
	ByPosition []PositionStat `json:"by_position"`

	// TimeToAuthNS summarizes arrival-to-authentication latency.
	TimeToAuthNS QuantileSet `json:"time_to_auth_ns"`
	// BufferDepth summarizes message-buffer occupancy after buffering.
	BufferDepth QuantileSet `json:"buffer_depth"`
	// OverflowDrops counts bounded-buffer evictions.
	OverflowDrops int `json:"overflow_drops,omitempty"`

	// OverheadHashesPerPacket is the dependence-graph overhead (Equation
	// 2's average), present when a graph was supplied.
	OverheadHashesPerPacket float64 `json:"overhead_hashes_per_packet,omitempty"`

	Faults FaultCounts `json:"faults"`

	// Diagnoses is the full per-packet verdict list, sorted by
	// (receiver, index).
	Diagnoses []PacketDiagnosis `json:"diagnoses,omitempty"`
}

// topCulpritsLimit bounds the ranking in the report; the full culprit
// detail stays available per diagnosis.
const topCulpritsLimit = 10

// BuildReport runs the full trace→graph join: classify every
// unauthenticated packet and aggregate the run summaries. skippedLines is
// the undecodable-line count from obs.ReadJSONL (0 for in-memory traces).
func BuildReport(events []obs.Event, skippedLines int, opts Options) (*Report, error) {
	rs := collect(events)
	diagnoses, err := diagnose(rs, opts)
	if err != nil {
		return nil, err
	}
	rootIndex := opts.RootIndex
	if rootIndex == 0 {
		rootIndex = rs.rootIndex
	}
	rep := &Report{
		Scheme:            rs.scheme,
		WireCount:         rs.wireCount,
		Receivers:         len(rs.receivers),
		RootIndex:         rootIndex,
		SkippedTraceLines: skippedLines,
		Sent:              rs.sent,
		Causes:            make(map[Cause]int),
		TimeToAuthNS:      quantiles(rs.timeToAuth),
		BufferDepth:       quantiles(rs.bufferDepth),
		OverflowDrops:     rs.overflowDrops,
		Faults: FaultCounts{
			Corrupted:      rs.corrupted,
			Truncated:      rs.truncated,
			ForgedInjected: rs.forgedInjected,
			ForgedRejected: rs.forgedRejected,
		},
		Diagnoses: diagnoses,
	}
	if opts.Graph != nil {
		rep.OverheadHashesPerPacket = opts.Graph.AvgHashesPerPacket()
	}

	culpritCount := make(map[uint32]int)
	for _, d := range diagnoses {
		rep.Causes[d.Cause]++
		for _, c := range d.Culprits {
			culpritCount[c]++
		}
	}
	rep.Unauthenticated = len(diagnoses)
	for c := range culpritCount {
		rep.TopCulprits = append(rep.TopCulprits, CulpritCount{Index: c, Count: culpritCount[c]})
	}
	sort.Slice(rep.TopCulprits, func(i, j int) bool {
		a, b := rep.TopCulprits[i], rep.TopCulprits[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		return a.Index < b.Index
	})
	if len(rep.TopCulprits) > topCulpritsLimit {
		rep.TopCulprits = rep.TopCulprits[:topCulpritsLimit]
	}

	for _, idx := range opts.scope(rs) {
		ps := PositionStat{Index: idx}
		for _, recv := range rs.receivers {
			st := rs.pkts[recv][idx]
			if st == nil {
				continue
			}
			if st.deliveredGenuine {
				ps.Received++
				rep.Delivered++
			}
			if st.authenticated {
				ps.Authenticated++
				rep.Authenticated++
			}
		}
		if ps.Received > 0 {
			ps.AuthRatio = float64(ps.Authenticated) / float64(ps.Received)
		}
		rep.ByPosition = append(rep.ByPosition, ps)
	}
	return rep, nil
}

// WriteJSON renders the report as indented, deterministic JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders a human-readable run summary.
func (r *Report) WriteText(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.printf("run report: scheme=%s wire=%d receivers=%d\n", orDash(r.Scheme), r.WireCount, r.Receivers)
	if r.SkippedTraceLines > 0 {
		bw.printf("WARNING: %d undecodable trace lines skipped\n", r.SkippedTraceLines)
	}
	bw.printf("packets: sent=%d delivered=%d authenticated=%d unauthenticated=%d\n",
		r.Sent, r.Delivered, r.Authenticated, r.Unauthenticated)
	bw.printf("\nroot causes:\n")
	for _, c := range CauseOrder {
		if n := r.Causes[c]; n > 0 {
			bw.printf("  %-26s %d\n", c, n)
		}
	}
	if r.Unauthenticated == 0 {
		bw.printf("  (none: every received packet authenticated)\n")
	}
	if len(r.TopCulprits) > 0 {
		bw.printf("\ntop culprits (lost packets cutting hash paths):\n")
		for _, c := range r.TopCulprits {
			bw.printf("  packet %-5d blamed %d times\n", c.Index, c.Count)
		}
	}
	bw.printf("\ntime-to-auth: n=%d mean=%.0fns p50=%.0f p90=%.0f p99=%.0f max=%d\n",
		r.TimeToAuthNS.Count, r.TimeToAuthNS.Mean, r.TimeToAuthNS.P50,
		r.TimeToAuthNS.P90, r.TimeToAuthNS.P99, r.TimeToAuthNS.Max)
	bw.printf("buffer depth: n=%d mean=%.1f p50=%.0f p90=%.0f p99=%.0f max=%d overflow_drops=%d\n",
		r.BufferDepth.Count, r.BufferDepth.Mean, r.BufferDepth.P50,
		r.BufferDepth.P90, r.BufferDepth.P99, r.BufferDepth.Max, r.OverflowDrops)
	if r.OverheadHashesPerPacket > 0 {
		bw.printf("overhead: %.2f hashes/packet\n", r.OverheadHashesPerPacket)
	}
	if r.Faults != (FaultCounts{}) {
		bw.printf("faults: corrupted=%d truncated=%d forged_injected=%d forged_rejected=%d\n",
			r.Faults.Corrupted, r.Faults.Truncated, r.Faults.ForgedInjected, r.Faults.ForgedRejected)
	}
	if len(r.ByPosition) > 0 {
		bw.printf("\nauth probability by position (index: authed/received):\n")
		for _, p := range r.ByPosition {
			bw.printf("  %4d: %d/%d (%.3f)\n", p.Index, p.Authenticated, p.Received, p.AuthRatio)
		}
	}
	return bw.err
}

// WriteMarkdown renders the report for inclusion in docs or PRs.
func (r *Report) WriteMarkdown(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.printf("# Run report — %s\n\n", orDash(r.Scheme))
	bw.printf("| | |\n|---|---|\n")
	bw.printf("| Wire packets | %d |\n", r.WireCount)
	bw.printf("| Receivers | %d |\n", r.Receivers)
	bw.printf("| Sent | %d |\n", r.Sent)
	bw.printf("| Delivered | %d |\n", r.Delivered)
	bw.printf("| Authenticated | %d |\n", r.Authenticated)
	bw.printf("| Unauthenticated | %d |\n", r.Unauthenticated)
	if r.SkippedTraceLines > 0 {
		bw.printf("| Skipped trace lines | %d |\n", r.SkippedTraceLines)
	}
	if r.OverheadHashesPerPacket > 0 {
		bw.printf("| Overhead (hashes/packet) | %.2f |\n", r.OverheadHashesPerPacket)
	}
	bw.printf("\n## Root causes\n\n| Cause | Count |\n|---|---|\n")
	for _, c := range CauseOrder {
		if n := r.Causes[c]; n > 0 {
			bw.printf("| %s | %d |\n", c, n)
		}
	}
	if r.Unauthenticated == 0 {
		bw.printf("| (none) | 0 |\n")
	}
	if len(r.TopCulprits) > 0 {
		bw.printf("\n## Top culprits\n\n| Lost packet | Cut diagnoses blaming it |\n|---|---|\n")
		for _, c := range r.TopCulprits {
			bw.printf("| %d | %d |\n", c.Index, c.Count)
		}
	}
	bw.printf("\n## Latency and buffering\n\n")
	bw.printf("- time-to-auth: n=%d mean=%.0fns p50=%.0f p90=%.0f p99=%.0f max=%d\n",
		r.TimeToAuthNS.Count, r.TimeToAuthNS.Mean, r.TimeToAuthNS.P50,
		r.TimeToAuthNS.P90, r.TimeToAuthNS.P99, r.TimeToAuthNS.Max)
	bw.printf("- buffer depth: n=%d mean=%.1f p50=%.0f p90=%.0f p99=%.0f max=%d (overflow drops: %d)\n",
		r.BufferDepth.Count, r.BufferDepth.Mean, r.BufferDepth.P50,
		r.BufferDepth.P90, r.BufferDepth.P99, r.BufferDepth.Max, r.OverflowDrops)
	if r.Faults != (FaultCounts{}) {
		bw.printf("- faults: corrupted=%d truncated=%d forged_injected=%d forged_rejected=%d\n",
			r.Faults.Corrupted, r.Faults.Truncated, r.Faults.ForgedInjected, r.Faults.ForgedRejected)
	}
	return bw.err
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// Diff compares two reports field by field and returns one line per
// difference, in a fixed order. Identical reports (e.g. two runs of the
// same seed) diff to an empty slice.
func Diff(a, b *Report) []string {
	var out []string
	add := func(format string, args ...any) { out = append(out, fmt.Sprintf(format, args...)) }
	if a.Scheme != b.Scheme {
		add("scheme: %q vs %q", a.Scheme, b.Scheme)
	}
	if a.WireCount != b.WireCount {
		add("wire_count: %d vs %d", a.WireCount, b.WireCount)
	}
	if a.Receivers != b.Receivers {
		add("receivers: %d vs %d", a.Receivers, b.Receivers)
	}
	if a.RootIndex != b.RootIndex {
		add("root_index: %d vs %d", a.RootIndex, b.RootIndex)
	}
	if a.Sent != b.Sent {
		add("sent: %d vs %d", a.Sent, b.Sent)
	}
	if a.Delivered != b.Delivered {
		add("delivered: %d vs %d", a.Delivered, b.Delivered)
	}
	if a.Authenticated != b.Authenticated {
		add("authenticated: %d vs %d", a.Authenticated, b.Authenticated)
	}
	if a.Unauthenticated != b.Unauthenticated {
		add("unauthenticated: %d vs %d", a.Unauthenticated, b.Unauthenticated)
	}
	for _, c := range CauseOrder {
		if a.Causes[c] != b.Causes[c] {
			add("cause %s: %d vs %d", c, a.Causes[c], b.Causes[c])
		}
	}
	if a.TimeToAuthNS != b.TimeToAuthNS {
		add("time_to_auth_ns: %+v vs %+v", a.TimeToAuthNS, b.TimeToAuthNS)
	}
	if a.BufferDepth != b.BufferDepth {
		add("buffer_depth: %+v vs %+v", a.BufferDepth, b.BufferDepth)
	}
	if a.OverflowDrops != b.OverflowDrops {
		add("overflow_drops: %d vs %d", a.OverflowDrops, b.OverflowDrops)
	}
	if a.Faults != b.Faults {
		add("faults: %+v vs %+v", a.Faults, b.Faults)
	}
	// Per-position stats: align by index.
	bPos := make(map[uint32]PositionStat, len(b.ByPosition))
	for _, p := range b.ByPosition {
		bPos[p.Index] = p
	}
	seen := make(map[uint32]bool, len(a.ByPosition))
	for _, pa := range a.ByPosition {
		seen[pa.Index] = true
		pb, ok := bPos[pa.Index]
		if !ok {
			add("position %d: present vs absent", pa.Index)
			continue
		}
		if pa != pb {
			add("position %d: %d/%d vs %d/%d", pa.Index,
				pa.Authenticated, pa.Received, pb.Authenticated, pb.Received)
		}
	}
	for _, pb := range b.ByPosition {
		if !seen[pb.Index] {
			add("position %d: absent vs present", pb.Index)
		}
	}
	// Per-packet diagnoses: both sides are sorted by (receiver, index).
	diagKey := func(d PacketDiagnosis) string {
		return fmt.Sprintf("r%d/i%d", d.Receiver, d.Index)
	}
	bd := make(map[string]PacketDiagnosis, len(b.Diagnoses))
	for _, d := range b.Diagnoses {
		bd[diagKey(d)] = d
	}
	seenD := make(map[string]bool, len(a.Diagnoses))
	for _, da := range a.Diagnoses {
		k := diagKey(da)
		seenD[k] = true
		db, ok := bd[k]
		if !ok {
			add("diagnosis %s: %s vs authenticated", k, da.Cause)
			continue
		}
		if da.Cause != db.Cause || !equalU32(da.Culprits, db.Culprits) {
			add("diagnosis %s: %s%v vs %s%v", k, da.Cause, da.Culprits, db.Cause, db.Culprits)
		}
	}
	for _, db := range b.Diagnoses {
		if !seenD[diagKey(db)] {
			add("diagnosis %s: authenticated vs %s", diagKey(db), db.Cause)
		}
	}
	return out
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
