package netsim

import (
	"bytes"
	"fmt"
	"math"
	"testing"
	"time"

	"mcauth/internal/analysis"
	"mcauth/internal/crypto"
	"mcauth/internal/delay"
	"mcauth/internal/loss"
	"mcauth/internal/obs"
	"mcauth/internal/scheme/augchain"
	"mcauth/internal/scheme/authtree"
	"mcauth/internal/scheme/emss"
	"mcauth/internal/scheme/rohatgi"
	"mcauth/internal/scheme/tesla"
	"mcauth/internal/stats"
)

func bern(t *testing.T, p float64) loss.Model {
	t.Helper()
	m, err := loss.NewBernoulli(p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func baseConfig(t *testing.T, p float64, receivers int) Config {
	t.Helper()
	return Config{
		Receivers:    receivers,
		Loss:         bern(t, p),
		Delay:        delay.Constant{D: 5 * time.Millisecond},
		SendInterval: 10 * time.Millisecond,
		Start:        time.Unix(5000, 0),
		Seed:         42,
	}
}

func TestConfigValidation(t *testing.T) {
	good := baseConfig(t, 0.1, 2)
	bad := []func(Config) Config{
		func(c Config) Config { c.Receivers = 0; return c },
		func(c Config) Config { c.Loss = nil; return c },
		func(c Config) Config { c.Delay = nil; return c },
		func(c Config) Config { c.SendInterval = 0; return c },
	}
	for i, mutate := range bad {
		if err := mutate(good).Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	s, err := rohatgi.New(4, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(s, mutateReceivers(good, 0), 1, testPayloads(4)); err == nil {
		t.Error("invalid config should fail Run")
	}
	if _, err := Run(nil, good, 1, testPayloads(4)); err == nil {
		t.Error("nil scheme should fail Run")
	}
}

func mutateReceivers(c Config, n int) Config {
	c.Receivers = n
	return c
}

func TestDeterministicBySeed(t *testing.T) {
	s, err := emss.New(emss.Config{N: 10, M: 2, D: 1}, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, 0.3, 20)
	a, err := Run(s, cfg, 1, testPayloads(10))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s, cfg, 1, testPayloads(10))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalAuthenticated() != b.TotalAuthenticated() {
		t.Error("same seed must reproduce the run")
	}
	cfg.Seed = 43
	c, err := Run(s, cfg, 1, testPayloads(10))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalAuthenticated() == c.TotalAuthenticated() &&
		equalRatios(a.AuthRatioByIndex(), c.AuthRatioByIndex()) {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

func equalRatios(a, b map[uint32]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestNoLossEverythingVerifies(t *testing.T) {
	s, err := emss.New(emss.Config{N: 20, M: 2, D: 1}, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, 0, 10)
	res, err := Run(s, cfg, 1, testPayloads(20))
	if err != nil {
		t.Fatal(err)
	}
	for r, rep := range res.PerReceiver {
		if rep.Stats.Authenticated != 20 {
			t.Errorf("receiver %d authenticated %d, want 20", r, rep.Stats.Authenticated)
		}
		if rep.Lost != 0 {
			t.Errorf("receiver %d lost %d with p=0", r, rep.Lost)
		}
	}
}

func TestHeavyJitterReorderingStillVerifies(t *testing.T) {
	// With no loss but jitter comparable to the whole block duration,
	// packets arrive wildly out of order; the verifier must still
	// authenticate everything.
	s, err := emss.New(emss.Config{N: 15, M: 2, D: 1}, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := delay.NewGaussian(100*time.Millisecond, 80*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, 0, 10)
	cfg.Delay = g
	res, err := Run(s, cfg, 1, testPayloads(15))
	if err != nil {
		t.Fatal(err)
	}
	for r, rep := range res.PerReceiver {
		if rep.Stats.Authenticated != 15 {
			t.Errorf("receiver %d authenticated %d, want 15", r, rep.Stats.Authenticated)
		}
	}
}

func TestReliableIndicesHonored(t *testing.T) {
	s, err := rohatgi.New(6, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, 0.9, 50)
	cfg.ReliableIndices = []uint32{1}
	res, err := Run(s, cfg, 1, testPayloads(6))
	if err != nil {
		t.Fatal(err)
	}
	for r, rep := range res.PerReceiver {
		if !rep.ReceivedByIndex[1] {
			t.Errorf("receiver %d lost the reliable signature packet", r)
		}
	}
}

func TestRohatgiMeasuredMatchesClosedForm(t *testing.T) {
	n, p := 10, 0.2
	s, err := rohatgi.New(n, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, p, 3000)
	cfg.ReliableIndices = []uint32{1}
	res, err := Run(s, cfg, 1, testPayloads(n))
	if err != nil {
		t.Fatal(err)
	}
	want, err := analysis.Rohatgi(n, p)
	if err != nil {
		t.Fatal(err)
	}
	// In Rohatgi send order equals the analytic chain order.
	for i := 2; i <= n; i++ {
		received, verified := res.Counts(uint32(i))
		iv, err := stats.WilsonInterval(verified, received, 0.9999)
		if err != nil {
			t.Fatal(err)
		}
		if !iv.Contains(want.Q[i]) {
			t.Errorf("packet %d: analytic %v outside measured CI %+v", i, want.Q[i], iv)
		}
	}
}

func TestEMSSMeasuredMatchesMarkovExact(t *testing.T) {
	n, p := 12, 0.3
	s, err := emss.New(emss.Config{N: n, M: 2, D: 1}, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, p, 3000)
	cfg.ReliableIndices = []uint32{uint32(n)} // signature packet
	res, err := Run(s, cfg, 1, testPayloads(n))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := analysis.MarkovExact{N: n, Offsets: []int{1, 2}, P: p}.Q()
	if err != nil {
		t.Fatal(err)
	}
	for rev := 2; rev <= n; rev++ {
		send := uint32(n + 1 - rev)
		received, verified := res.Counts(send)
		iv, err := stats.WilsonInterval(verified, received, 0.9999)
		if err != nil {
			t.Fatal(err)
		}
		if !iv.Contains(exact.Q[rev]) {
			t.Errorf("reversed %d: exact %v outside measured CI %+v", rev, exact.Q[rev], iv)
		}
	}
}

func TestAugChainSurvivesBurstEndToEnd(t *testing.T) {
	cfg := baseConfig(t, 0, 100)
	burst, err := loss.NewSingleBurst(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Loss = burst
	s, err := augchain.New(augchain.Config{N: 21, A: 3, B: 3}, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	cfg.ReliableIndices = []uint32{21}
	res, err := Run(s, cfg, 1, testPayloads(21))
	if err != nil {
		t.Fatal(err)
	}
	for r, rep := range res.PerReceiver {
		// Every received packet must verify: a single burst of b+1
		// never disconnects C_{3,3}.
		if rep.Stats.Authenticated != rep.Delivered {
			t.Errorf("receiver %d verified %d of %d received",
				r, rep.Stats.Authenticated, rep.Delivered)
		}
	}
}

func TestAuthTreeImmuneToLoss(t *testing.T) {
	s, err := authtree.New(16, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, 0.5, 200)
	res, err := Run(s, cfg, 1, testPayloads(16))
	if err != nil {
		t.Fatal(err)
	}
	for r, rep := range res.PerReceiver {
		if rep.Stats.Authenticated != rep.Delivered {
			t.Errorf("receiver %d verified %d of %d", r, rep.Stats.Authenticated, rep.Delivered)
		}
	}
}

func TestTESLAMeasuredMatchesEquation7(t *testing.T) {
	// Gaussian delay with mu = 0.5*TDisc, sigma = 0.25*TDisc; loss 0.2.
	// Measured min-ratio over data packets ≈ (1-p) * Phi((TDisc-mu)/sigma).
	n, lag := 8, 2
	interval := 100 * time.Millisecond
	tDisc := time.Duration(lag) * interval
	mu := tDisc / 2
	sigma := tDisc / 4
	p := 0.2
	cfgT := tesla.Config{
		N:        n,
		Lag:      lag,
		Interval: interval,
		Start:    time.Unix(9000, 0),
		Seed:     []byte("seed"),
	}
	s, err := tesla.New(cfgT, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	gauss, err := delay.NewGaussian(mu, sigma)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Receivers:       4000,
		Loss:            bern(t, p),
		Delay:           gauss,
		SendInterval:    interval,
		Start:           cfgT.Start,
		Seed:            7,
		ReliableIndices: []uint32{1}, // bootstrap
	}
	res, err := Run(s, cfg, 1, testPayloads(n))
	if err != nil {
		t.Fatal(err)
	}
	ana := analysis.TESLA{
		N:     n,
		P:     p,
		TDisc: tDisc.Seconds(),
		Mu:    mu.Seconds(),
		Sigma: sigma.Seconds(),
	}
	want, err := ana.Q()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		ratios := res.AuthRatioByIndex()
		got := ratios[tesla.DataWireIndex(i)]
		if math.Abs(got-want.Q[i]) > 0.04 {
			t.Errorf("data %d: measured %v vs analytic %v", i, got, want.Q[i])
		}
	}
	qmin, err := ana.QMin()
	if err != nil {
		t.Fatal(err)
	}
	indices := make([]uint32, n)
	for i := range indices {
		indices[i] = tesla.DataWireIndex(i + 1)
	}
	if got := res.MinAuthRatio(indices); math.Abs(got-qmin) > 0.04 {
		t.Errorf("min ratio %v vs analytic qmin %v", got, qmin)
	}
}

func TestTraceRoundTripMatchesStats(t *testing.T) {
	// A traced run written to JSONL and read back must agree with the
	// result's counters: per-receiver authenticated events == each
	// receiver's Stats.Authenticated, and delivered+dropped == wire
	// count per receiver.
	s, err := emss.New(emss.Config{N: 12, M: 2, D: 1}, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tracer := obs.NewJSONLTracer(&buf)
	reg := obs.NewRegistry()
	cfg := baseConfig(t, 0.3, 8)
	cfg.Tracer = tracer
	cfg.Metrics = reg
	res, err := Run(s, cfg, 1, testPayloads(12))
	if err != nil {
		t.Fatal(err)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	events, skipped, err := obs.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("trace has %d undecodable lines", skipped)
	}
	authed := make(map[int]int)
	delivered := make(map[int]int)
	dropped := make(map[int]int)
	sent := 0
	for _, e := range events {
		switch e.Type {
		case obs.EventSent:
			if e.Receiver != -1 {
				t.Errorf("sent event attributed to receiver %d", e.Receiver)
			}
			sent++
		case obs.EventAuthenticated:
			authed[e.Receiver]++
		case obs.EventDelivered:
			delivered[e.Receiver]++
		case obs.EventDropped:
			dropped[e.Receiver]++
			if e.Reason != "loss" && e.Reason != "late_join" {
				t.Errorf("drop reason %q", e.Reason)
			}
		}
	}
	if sent != res.WireCount {
		t.Errorf("sent events %d, want wire count %d", sent, res.WireCount)
	}
	for r, rep := range res.PerReceiver {
		if authed[r] != rep.Stats.Authenticated {
			t.Errorf("receiver %d: %d authenticated events, Stats.Authenticated %d",
				r, authed[r], rep.Stats.Authenticated)
		}
		if delivered[r] != rep.Delivered {
			t.Errorf("receiver %d: %d delivered events, report %d", r, delivered[r], rep.Delivered)
		}
		if dropped[r] != rep.Lost {
			t.Errorf("receiver %d: %d dropped events, report %d", r, dropped[r], rep.Lost)
		}
	}

	snap := reg.Snapshot()
	if got := snap.Counters["verifier.authenticated"]; got != int64(res.TotalAuthenticated()) {
		t.Errorf("metrics verifier.authenticated = %d, want %d", got, res.TotalAuthenticated())
	}
	if got := snap.Counters["netsim.sent"]; got != int64(res.WireCount) {
		t.Errorf("metrics netsim.sent = %d, want %d", got, res.WireCount)
	}
	tta := snap.Histograms["verifier.time_to_auth_ns"]
	if tta.Count != int64(res.TotalAuthenticated()) {
		t.Errorf("time-to-auth histogram count %d, want %d", tta.Count, res.TotalAuthenticated())
	}
}

func TestTracerOffEmitsNothing(t *testing.T) {
	// The nil-tracer hot path must not leak events anywhere: run the
	// same simulation with and without observability and require
	// identical results.
	s, err := emss.New(emss.Config{N: 10, M: 2, D: 1}, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, 0.3, 6)
	plain, err := Run(s, cfg, 1, testPayloads(10))
	if err != nil {
		t.Fatal(err)
	}
	mem := &obs.MemTracer{}
	cfg.Tracer = mem
	cfg.Metrics = obs.NewRegistry()
	traced, err := Run(s, cfg, 1, testPayloads(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(mem.Events()) == 0 {
		t.Fatal("traced run emitted no events")
	}
	if plain.TotalAuthenticated() != traced.TotalAuthenticated() {
		t.Error("observability changed simulation outcome")
	}
	if !equalRatios(plain.AuthRatioByIndex(), traced.AuthRatioByIndex()) {
		t.Error("observability changed per-index ratios")
	}
}

func TestVerifierTimeToAuthMatchesNetsimLatencies(t *testing.T) {
	// The verifier-internal receiver-delay histogram must agree with
	// netsim's own arrival-to-auth measurement (satellite check for
	// transport-driven runs, which have only the verifier's numbers).
	s, err := emss.New(emss.Config{N: 10, M: 2, D: 1}, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, 0.2, 10)
	res, err := Run(s, cfg, 1, testPayloads(10))
	if err != nil {
		t.Fatal(err)
	}
	for r, rep := range res.PerReceiver {
		if int(rep.Stats.TimeToAuth.Count) != rep.Stats.Authenticated {
			t.Errorf("receiver %d: histogram count %d, authenticated %d",
				r, rep.Stats.TimeToAuth.Count, rep.Stats.Authenticated)
		}
		var netsimSum int64
		for _, l := range rep.AuthLatencies {
			netsimSum += l.Nanoseconds()
		}
		if rep.Stats.TimeToAuth.Sum != netsimSum {
			t.Errorf("receiver %d: verifier latency sum %d, netsim sum %d",
				r, rep.Stats.TimeToAuth.Sum, netsimSum)
		}
	}
}

func TestReportAccessors(t *testing.T) {
	rep := ReceiverReport{
		ReceivedByIndex: []bool{false, true, false},
		VerifiedByIndex: []bool{false, true, false},
	}
	if !rep.Received(1) || !rep.Verified(1) {
		t.Error("index 1 should be received and verified")
	}
	if rep.Received(2) || rep.Verified(2) {
		t.Error("index 2 should be absent")
	}
	if rep.Received(99) || rep.Verified(99) {
		t.Error("out-of-range index must report false, not panic")
	}
}

func TestLatencyMeasurement(t *testing.T) {
	// Signature-first chain, in-order delivery: zero authentication
	// latency for every packet.
	s, err := rohatgi.New(8, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, 0, 5)
	res, err := Run(s, cfg, 1, testPayloads(8))
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range res.PerReceiver {
		for _, l := range rep.AuthLatencies {
			if l != 0 {
				t.Fatalf("rohatgi latency %v, want 0", l)
			}
		}
	}
	// Signature-last EMSS: the first packet waits for the signature, so
	// some latencies must be positive.
	s2, err := emss.New(emss.Config{N: 8, M: 2, D: 1}, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(s2, cfg, 1, testPayloads(8))
	if err != nil {
		t.Fatal(err)
	}
	positive := false
	for _, rep := range res2.PerReceiver {
		for _, l := range rep.AuthLatencies {
			if l > 0 {
				positive = true
			}
		}
	}
	if !positive {
		t.Error("signature-last scheme should show positive auth latency")
	}
}

// testPayloads builds n distinct payloads. It mirrors schemetest.Payloads,
// which in-package tests cannot use: schemetest drives netsim (its
// corruption sweep), so importing it here would close an import cycle.
func testPayloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("payload-%03d", i))
	}
	return out
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	s, err := emss.New(emss.Config{N: 12, M: 2, D: 1}, crypto.NewSignerFromString("w"))
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *Result {
		t.Helper()
		cfg := baseConfig(t, 0.3, 25)
		cfg.Workers = workers
		res, err := Run(s, cfg, 1, testPayloads(12))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if got.TotalAuthenticated() != base.TotalAuthenticated() ||
			!equalRatios(got.AuthRatioByIndex(), base.AuthRatioByIndex()) {
			t.Errorf("run with %d workers differs from sequential run", workers)
		}
	}

	cfg := baseConfig(t, 0.3, 5)
	cfg.Workers = -1
	if _, err := Run(s, cfg, 1, testPayloads(12)); err == nil {
		t.Error("negative Workers should fail validation")
	}
}
