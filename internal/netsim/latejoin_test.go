package netsim

import (
	"testing"

	"mcauth/internal/crypto"
	"mcauth/internal/scheme/authtree"
	"mcauth/internal/scheme/emss"
	"mcauth/internal/scheme/rohatgi"
)

func TestLateJoinersValidation(t *testing.T) {
	cfg := baseConfig(t, 0.1, 4)
	cfg.LateJoiners = 5
	if err := cfg.Validate(); err == nil {
		t.Error("late joiners > receivers should fail")
	}
	cfg.LateJoiners = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative late joiners should fail")
	}
}

func TestLateJoinersMissPreJoinPackets(t *testing.T) {
	s, err := authtree.New(16, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, 0, 10)
	cfg.LateJoiners = 10
	res, err := Run(s, cfg, 1, testPayloads(16))
	if err != nil {
		t.Fatal(err)
	}
	for r, rep := range res.PerReceiver {
		if rep.JoinedAtWire < 2 {
			t.Errorf("receiver %d marked late but joined at %d", r, rep.JoinedAtWire)
		}
		for idx := uint32(1); int(idx) < rep.JoinedAtWire; idx++ {
			if rep.ReceivedByIndex[idx] {
				t.Errorf("receiver %d received pre-join packet %d", r, idx)
			}
		}
		// Everything after the join (no loss) must verify: the tree
		// needs no synchronization.
		want := 16 - (rep.JoinedAtWire - 1)
		if rep.Stats.Authenticated != want {
			t.Errorf("receiver %d authenticated %d, want %d", r, rep.Stats.Authenticated, want)
		}
	}
}

func TestLateJoinersRohatgiCannotSync(t *testing.T) {
	// Signature-first chain: a late joiner missed the signature packet
	// and can never verify anything in this block — the paper's
	// join/leave motivation for per-block (or per-packet) signatures.
	s, err := rohatgi.New(12, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, 0, 8)
	cfg.LateJoiners = 8
	res, err := Run(s, cfg, 1, testPayloads(12))
	if err != nil {
		t.Fatal(err)
	}
	for r, rep := range res.PerReceiver {
		if rep.Stats.Authenticated != 0 {
			t.Errorf("receiver %d (joined %d) authenticated %d without the signature",
				r, rep.JoinedAtWire, rep.Stats.Authenticated)
		}
	}
}

func TestLateJoinersEMSSSyncAtSignature(t *testing.T) {
	// Signature-last EMSS: a late joiner verifies everything it received
	// after joining, because the signature arrives at block end.
	s, err := emss.New(emss.Config{N: 12, M: 2, D: 1}, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, 0, 8)
	cfg.LateJoiners = 8
	res, err := Run(s, cfg, 1, testPayloads(12))
	if err != nil {
		t.Fatal(err)
	}
	for r, rep := range res.PerReceiver {
		if rep.Stats.Authenticated != rep.Delivered {
			t.Errorf("receiver %d verified %d of %d delivered after joining at %d",
				r, rep.Stats.Authenticated, rep.Delivered, rep.JoinedAtWire)
		}
	}
}

func TestMixedJoinersDeterministic(t *testing.T) {
	s, err := emss.New(emss.Config{N: 10, M: 2, D: 1}, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, 0.2, 20)
	cfg.LateJoiners = 5
	a, err := Run(s, cfg, 1, testPayloads(10))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s, cfg, 1, testPayloads(10))
	if err != nil {
		t.Fatal(err)
	}
	early := 0
	for r := range a.PerReceiver {
		if a.PerReceiver[r].JoinedAtWire != b.PerReceiver[r].JoinedAtWire {
			t.Fatal("join positions not deterministic under a fixed seed")
		}
		if a.PerReceiver[r].JoinedAtWire == 1 {
			early++
		}
	}
	if early != 15 {
		t.Errorf("%d early receivers, want 15", early)
	}
}
