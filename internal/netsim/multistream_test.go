package netsim

import (
	"testing"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/loss"
	"mcauth/internal/obs"
	"mcauth/internal/scheme"
	"mcauth/internal/scheme/emss"
	"mcauth/internal/scheme/rohatgi"
)

func multiScheme(id uint64, signer crypto.Signer) (scheme.Scheme, error) {
	if id%2 == 0 {
		return emss.New(emss.Config{N: 8, M: 2, D: 1, SigCopies: 2}, signer)
	}
	return rohatgi.New(4, signer)
}

func TestRunMultiStreamLossless(t *testing.T) {
	reg := obs.NewRegistry()
	res, err := RunMultiStream(MultiStreamConfig{
		Streams:         16,
		BlocksPerStream: 4,
		Scheme:          multiScheme,
		Receivers:       3,
		Seed:            7,
		BatchSize:       16,
		FlushInterval:   40 * time.Millisecond,
		Metrics:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SubscriberDrops != 0 {
		t.Fatalf("dropped %d packets on a deep queue", res.SubscriberDrops)
	}
	if res.MinAuthRatio < 1 {
		t.Fatalf("lossless run authenticated ratio %v, want 1", res.MinAuthRatio)
	}
	if res.Amortization <= 1 {
		t.Fatalf("amortization %v, want > 1", res.Amortization)
	}
	if reg.Counter("server.published").Value() != int64(res.Published) {
		t.Errorf("metrics published %d, result %d",
			reg.Counter("server.published").Value(), res.Published)
	}
}

func TestRunMultiStreamLossy(t *testing.T) {
	m, err := loss.NewBernoulli(0.15)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMultiStream(MultiStreamConfig{
		Streams:         8,
		BlocksPerStream: 6,
		Scheme:          multiScheme,
		Receivers:       4,
		Loss:            m,
		Seed:            11,
		BatchSize:       16,
		FlushInterval:   40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Loss must cost something, but the chained schemes recover most of
	// the stream at p=0.15.
	if res.AuthRatio >= 1 {
		t.Fatalf("lossy run authenticated everything (ratio %v)", res.AuthRatio)
	}
	if res.AuthRatio < 0.5 {
		t.Fatalf("auth ratio %v suspiciously low for p=0.15", res.AuthRatio)
	}
}

func TestRunMultiStreamValidation(t *testing.T) {
	if _, err := RunMultiStream(MultiStreamConfig{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := RunMultiStream(MultiStreamConfig{Streams: 1, BlocksPerStream: 1, Receivers: 1}); err == nil {
		t.Error("nil scheme factory accepted")
	}
}
