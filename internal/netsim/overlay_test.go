package netsim

import (
	"reflect"
	"testing"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/fault"
	"mcauth/internal/loss"
	"mcauth/internal/obs"
	"mcauth/internal/scheme"
	"mcauth/internal/scheme/emss"
)

// overlayScheme builds the emss scheme used across the overlay tests; its
// signature packet is index n, which is what ReliableIndices marks and
// what relays repair.
func overlayScheme(t *testing.T, n int) scheme.Scheme {
	t.Helper()
	s, err := emss.New(emss.Config{N: n, M: 2, D: 1}, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// losslessTree builds a depth-2 fanout-2 tree with lossless edges and a
// Bernoulli last hop — the topology whose overlay run must match the flat
// run bit-for-bit.
func losslessTree(t *testing.T, p float64) *loss.TreeModel {
	t.Helper()
	tree, err := loss.NewUniformTree(3, 2, 2, nil, bern(t, p))
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// TestOverlayFlatParity: with lossless tree edges and relays off, an
// overlay run is the flat topology with extra hops that drop nothing —
// per-receiver results must be bit-identical to Run with the same seed,
// including late joiners (same join-position draws) and sig retransmits.
func TestOverlayFlatParity(t *testing.T) {
	const n = 12
	s := overlayScheme(t, n)
	cfg := baseConfig(t, 0.25, 40)
	cfg.ReliableIndices = []uint32{n}
	cfg.LateJoiners = 5
	for _, retrans := range []int{0, 2} {
		cfg.SigRetransmits = retrans
		flat, err := Run(s, cfg, 1, testPayloads(n))
		if err != nil {
			t.Fatal(err)
		}
		over, err := RunOverlay(s, cfg, OverlayConfig{Tree: losslessTree(t, 0.25)}, 1, testPayloads(n))
		if err != nil {
			t.Fatal(err)
		}
		if over.WireCount != flat.WireCount {
			t.Fatalf("retrans=%d: wire count %d != flat %d", retrans, over.WireCount, flat.WireCount)
		}
		if !reflect.DeepEqual(over.PerReceiver, flat.PerReceiver) {
			t.Fatalf("retrans=%d: overlay (relays off, lossless edges) diverges from flat run", retrans)
		}
	}
}

// lossyOverlay is the shared scenario for the repair/determinism tests:
// a correlated lossy edge feeding the first mid relay deterministically
// swallows both signature copies, and the retransmitted signature (empty
// reliable set) leaves the whole signature class subject to real last-hop
// loss — so both upstream and last-hop repairs have work to do.
func lossyOverlay(t *testing.T, relays bool) (scheme.Scheme, Config, OverlayConfig) {
	t.Helper()
	const n = 12
	s := overlayScheme(t, n)
	cfg := baseConfig(t, 0.2, 48)
	cfg.ReliableIndices = []uint32{n}
	cfg.SigRetransmits = 1 // 13 wires: the signature at 12 plus its copy at 13
	tree, err := loss.NewUniformTree(9, 2, 2, bern(t, 0.2), bern(t, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	// Edge 1 feeds the first mid relay: everything under it shares its
	// loss, and this trace drops exactly the two signature wires there.
	lost := make([]bool, n+1)
	lost[n-1], lost[n] = true, true
	tr, err := loss.NewTrace(lost)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.SetEdge(1, tr); err != nil {
		t.Fatal(err)
	}
	return s, cfg, OverlayConfig{Tree: tree, Relays: relays, RepairRTT: 30 * time.Millisecond}
}

// TestOverlayWorkerDeterminism: the full overlay result — receiver
// reports, relay reports, flags — must be byte-identical at any worker
// count.
func TestOverlayWorkerDeterminism(t *testing.T) {
	s, cfg, ocfg := lossyOverlay(t, true)
	cfg.LateJoiners = 6
	ocfg.Withhold = []int{4}
	var base *OverlayResult
	for _, workers := range []int{1, 2, 8} {
		cfg.Workers = workers
		got, err := RunOverlay(s, cfg, ocfg, 1, testPayloads(12))
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = got
			continue
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d: overlay result diverges from workers=1", workers)
		}
	}
}

// TestOverlayRepairGain is the scenario the lab gate enforces: under a
// correlated lossy tree edge, relays serving signature repairs must raise
// the downstream authenticated fraction over passive forwarding.
func TestOverlayRepairGain(t *testing.T) {
	s, cfg, ocfgOff := lossyOverlay(t, false)
	off, err := RunOverlay(s, cfg, ocfgOff, 1, testPayloads(12))
	if err != nil {
		t.Fatal(err)
	}
	_, _, ocfgOn := lossyOverlay(t, true)
	on, err := RunOverlay(s, cfg, ocfgOn, 1, testPayloads(12))
	if err != nil {
		t.Fatal(err)
	}
	if got := off.TotalRepaired(); got != 0 {
		t.Fatalf("relays off but %d receiver repairs", got)
	}
	upstream := 0
	for _, rep := range on.Relays {
		upstream += rep.UpstreamRepaired
	}
	if upstream == 0 {
		t.Fatal("no upstream repairs; the lossy-edge scenario is vacuous")
	}
	if on.TotalRepaired() == 0 {
		t.Fatal("no last-hop repairs served")
	}
	if onAuth, offAuth := on.TotalAuthenticated(), off.TotalAuthenticated(); onAuth <= offAuth {
		t.Fatalf("repairs did not raise authentication: on=%d off=%d", onAuth, offAuth)
	}
	// Served-repair accounting: the per-relay tallies must equal the
	// receiver-side count.
	served := 0
	for _, rep := range on.Relays {
		if rep.ServedRepairs > 0 && !rep.Leaf {
			t.Fatalf("non-leaf relay %d served last-hop repairs", rep.Node)
		}
		served += rep.ServedRepairs
	}
	if served != on.TotalRepaired() {
		t.Fatalf("relay ServedRepairs %d != receiver Repaired total %d", served, on.TotalRepaired())
	}
}

// TestOverlayWithholding: a withholding relay serves no signature
// packets, its subtree's authentication collapses, and the peer-sampling
// audit flags it — and only it.
func TestOverlayWithholding(t *testing.T) {
	const n = 12
	s := overlayScheme(t, n)
	cfg := baseConfig(t, 0.1, 64)
	cfg.ReliableIndices = []uint32{n}
	tree, err := loss.NewUniformTree(5, 2, 2, nil, bern(t, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	ocfg := OverlayConfig{Tree: tree, Relays: true, Withhold: []int{1}}
	res, err := RunOverlay(s, cfg, ocfg, 1, testPayloads(n))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Flagged, []int{1}) {
		t.Fatalf("Flagged = %v, want [1]", res.Flagged)
	}
	// Node 1's whole subtree (mid relay 1, leaves 3 and 4) serves no
	// signature wire, but only the withholder itself gets flagged by this
	// audit round: its children look identical to victims of a dead edge,
	// and they *are* victims.
	if !res.Relays[1].Withheld || !res.Relays[1].Flagged {
		t.Fatalf("relay 1 report = %+v, want withheld and flagged", res.Relays[1])
	}
	for _, e := range []int{2, 5, 6} {
		if res.Relays[e].Flagged {
			t.Fatalf("healthy relay %d flagged", e)
		}
	}
	// Receivers under the withholder (leaves 3,4 = receivers r%4 in {0,1})
	// never authenticate; the healthy subtree does.
	var underAuth, healthyAuth int
	for r, rep := range res.PerReceiver {
		if r%4 < 2 {
			underAuth += rep.Stats.Authenticated
		} else {
			healthyAuth += rep.Stats.Authenticated
		}
	}
	if underAuth != 0 {
		t.Fatalf("withheld subtree authenticated %d packets without a signature", underAuth)
	}
	if healthyAuth == 0 {
		t.Fatal("healthy subtree authenticated nothing")
	}
	if got := reg.Counter("relay.withholding_flagged").Value(); got != 1 {
		t.Fatalf("relay.withholding_flagged = %d, want 1", got)
	}
}

// TestOverlayForgedRepairs is the adversarial invariant: a relay serving
// forged repairs from a poisoned store injects them downstream, the
// verifier rejects every one, and no forged payload ever authenticates.
func TestOverlayForgedRepairs(t *testing.T) {
	s, cfg, ocfg := lossyOverlay(t, true)
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	// Poison every leaf relay's store so all last-hop repairs are forged.
	ocfg.ForgeRepairs = []int{3, 4, 5, 6}
	res, err := RunOverlay(s, cfg, ocfg, 1, testPayloads(12))
	if err != nil {
		t.Fatal(err)
	}
	totals := res.FaultTotals()
	if totals.ForgedInjected == 0 {
		t.Fatal("no forged repairs injected; the scenario is vacuous")
	}
	if totals.ForgedAuthenticated != 0 {
		t.Fatalf("security invariant violated: %d forged repairs authenticated", totals.ForgedAuthenticated)
	}
	if totals.ForgedRejected == 0 {
		t.Fatal("verifier never explicitly rejected a forged repair")
	}
	if got := res.TotalRepaired(); got != 0 {
		t.Fatalf("poisoned repairs counted as genuine: Repaired=%d", got)
	}
	if reg.Counter("netsim.forged_injected").Value() == 0 {
		t.Fatal("netsim.forged_injected counter not populated")
	}
}

// TestOverlayValidation pins the overlay-specific configuration errors.
func TestOverlayValidation(t *testing.T) {
	const n = 8
	s := overlayScheme(t, n)
	cfg := baseConfig(t, 0.1, 4)
	tree := losslessTree(t, 0.1)
	bad := []OverlayConfig{
		{},                                   // no tree
		{Tree: tree, Withhold: []int{0}},     // source cannot withhold
		{Tree: tree, Withhold: []int{99}},    // out of range
		{Tree: tree, ForgeRepairs: []int{2}}, // forging needs relays
		{Tree: tree, Relays: true, ForgeRepairs: []int{0}}, // source cannot forge
	}
	for i, ocfg := range bad {
		if _, err := RunOverlay(s, cfg, ocfg, 1, testPayloads(n)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	faulted := cfg
	faulted.Faults = &fault.Config{CorruptRate: 0.1}
	if _, err := RunOverlay(s, faulted, OverlayConfig{Tree: tree}, 1, testPayloads(n)); err == nil {
		t.Error("overlay with a wire-fault injector should fail")
	}
}
