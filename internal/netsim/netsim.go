// Package netsim simulates the paper's network substrate: a single source
// multicasting an authenticated packet stream to many receivers over
// best-effort links with per-receiver random loss and random end-to-end
// delay (Section 4.1). The simulator is a per-receiver discrete-event run:
// packets are stamped with send times, each receiver's copies are dropped
// or delayed independently, delivered in arrival order (so reordering
// emerges naturally from delay jitter), and fed to the scheme's verifier.
// Receivers run concurrently.
//
// It substitutes for the paper's unavailable testbed (the Internet): the
// loss and delay models are exactly the ones the paper's analysis assumes,
// which is what makes measured-vs-analytic comparison meaningful.
//
// Runs are observable: set Config.Tracer to record every packet's
// lifecycle (sent, dropped, delivered, buffered, authenticated, ...) as
// attributed events, and Config.Metrics to aggregate netsim.* and
// verifier.* instruments. Both default to off and cost nothing when off.
package netsim

import (
	"fmt"
	"sort"
	"time"

	"mcauth/internal/delay"
	"mcauth/internal/fault"
	"mcauth/internal/loss"
	"mcauth/internal/obs"
	"mcauth/internal/packet"
	"mcauth/internal/parallel"
	"mcauth/internal/scheme"
	"mcauth/internal/stats"
	"mcauth/internal/verifier"
)

// Config parameterizes a simulation run.
type Config struct {
	// Receivers is the number of independent receivers.
	Receivers int
	// Loss is the per-receiver loss channel.
	Loss loss.Model
	// Delay is the per-packet end-to-end delay model.
	Delay delay.Model
	// SendInterval spaces consecutive wire packets at the sender.
	SendInterval time.Duration
	// Start is the send time of the first wire packet.
	Start time.Time
	// Seed makes the run reproducible.
	Seed uint64
	// ReliableIndices lists wire indices that are never lost — used for
	// the signature/bootstrap packet, per the paper's assumption that
	// P_sign always arrives ("achieved in practice by sending it multiple
	// times"). It is the *assumption*; set SigRetransmits to replace it
	// with the real mechanism.
	ReliableIndices []uint32
	// SigRetransmits, when > 0, disables the ReliableIndices magic and
	// instead retransmits each listed index that many extra times at the
	// tail of the block — the paper's "sent multiple times" remedy made
	// real: every copy is subject to loss, delay and faults like any
	// other packet, so the depgraph SigCopies overhead term becomes a
	// measured quantity instead of an analytic assumption.
	SigRetransmits int
	// Faults, when non-nil and enabled, passes every surviving delivery
	// through a seeded adversarial channel (internal/fault): corruption,
	// truncation, duplication, forged-packet injection, reorder spikes
	// and sender stalls. Each receiver draws its own fault stream from
	// the run seed, so adversarial runs stay reproducible.
	Faults *fault.Config
	// MaxBuffered, when > 0, caps every receiver verifier's pending-
	// packet buffer (via scheme.BufferBounded) so adversarial floods
	// cannot grow memory without bound.
	MaxBuffered int
	// LateJoiners is how many of the Receivers join mid-stream (the
	// paper's long-lived sessions where "recipients join and leave
	// frequently"): each late joiner starts at a uniformly random wire
	// position and misses everything sent before it — including
	// ReliableIndices packets, since it was not yet subscribed.
	LateJoiners int
	// Workers bounds how many receivers are simulated concurrently; <= 0
	// selects parallel.DefaultWorkers. Each receiver's RNG stream is
	// derived before the concurrent phase, so results do not depend on
	// this setting.
	Workers int
	// Tracer, when non-nil, receives every packet-lifecycle event of the
	// run with per-receiver attribution. It must be safe for concurrent
	// use (receivers run in parallel).
	Tracer obs.Tracer
	// Metrics, when non-nil, aggregates netsim.* counters and the
	// verifiers' instruments across all receivers.
	Metrics *obs.Registry
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Receivers < 1 {
		return fmt.Errorf("netsim: receivers %d must be >= 1", c.Receivers)
	}
	if c.Loss == nil {
		return fmt.Errorf("netsim: nil loss model")
	}
	if c.Delay == nil {
		return fmt.Errorf("netsim: nil delay model")
	}
	if c.SendInterval <= 0 {
		return fmt.Errorf("netsim: send interval %v must be positive", c.SendInterval)
	}
	if c.LateJoiners < 0 || c.LateJoiners > c.Receivers {
		return fmt.Errorf("netsim: late joiners %d out of [0,%d]", c.LateJoiners, c.Receivers)
	}
	if c.SigRetransmits < 0 || c.SigRetransmits > maxSigRetransmits {
		return fmt.Errorf("netsim: sig retransmits %d out of [0,%d]", c.SigRetransmits, maxSigRetransmits)
	}
	if c.MaxBuffered < 0 {
		return fmt.Errorf("netsim: max buffered %d must be >= 0", c.MaxBuffered)
	}
	if c.Workers < 0 {
		return fmt.Errorf("netsim: workers %d must be >= 0", c.Workers)
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return fmt.Errorf("netsim: %w", err)
		}
	}
	return nil
}

// maxSigRetransmits mirrors the scheme layer's root-copy bound: residual
// loss falls as p^(copies+1), so a handful of copies already makes the
// "P_sign always arrives" assumption hold to any practical precision.
const maxSigRetransmits = 8

// ReceiverReport summarizes one receiver's run.
type ReceiverReport struct {
	Delivered int
	Lost      int
	// JoinedAtWire is the first wire index this receiver was subscribed
	// for (1 = from the start).
	JoinedAtWire int
	// Verifier counters (authenticated, rejected, unsafe, buffers).
	Stats verifier.Stats
	// ReceivedByIndex and VerifiedByIndex are per-wire-index outcomes,
	// indexed by packet index (1-based; slot 0 is unused). They are
	// slices rather than maps because the wire count is known up front —
	// no per-packet map allocation in the receiver hot loop, and
	// iteration order is deterministic. Use the Received / Verified
	// accessors for bounds-safe lookups.
	ReceivedByIndex []bool
	VerifiedByIndex []bool
	// AuthLatencies holds, for each authenticated packet, the time from
	// its arrival to its authentication (the measured receiver delay).
	AuthLatencies []time.Duration
	// Repaired counts packets this receiver lost on its last hop but
	// recovered via a NACK signature repair served by its local relay.
	// Always zero for flat (non-overlay) runs and overlay runs with
	// relays off.
	Repaired int
	// Adversarial-channel tallies, populated only when Config.Faults is
	// enabled. Corrupted/Truncated count mutated genuine deliveries,
	// Duplicated counts extra copies, ForgedInjected counts fabricated
	// packets reaching the verifier. ForgedRejected counts forgeries the
	// verifier refused at ingest; ForgedAuthenticated counts forged
	// payloads that authenticated — the security invariant is that it is
	// always zero. InvalidDeliveries counts decodable deliveries the
	// verifier refused outright (e.g. out-of-range index after a bit
	// flip), tolerated under faults rather than treated as fatal.
	Corrupted           int
	Truncated           int
	Duplicated          int
	ForgedInjected      int
	ForgedRejected      int
	ForgedAuthenticated int
	InvalidDeliveries   int
}

// Received reports whether the packet with the given index arrived. It is
// the bounds-safe accessor over ReceivedByIndex.
func (r *ReceiverReport) Received(index uint32) bool {
	return int(index) < len(r.ReceivedByIndex) && r.ReceivedByIndex[index]
}

// Verified reports whether the packet with the given index authenticated.
func (r *ReceiverReport) Verified(index uint32) bool {
	return int(index) < len(r.VerifiedByIndex) && r.VerifiedByIndex[index]
}

// Result aggregates a run.
type Result struct {
	WireCount   int
	PerReceiver []ReceiverReport
}

// runMetrics caches the netsim.* instruments so receiver goroutines never
// touch the registry lock.
type runMetrics struct {
	sent           *obs.Counter
	dropped        *obs.Counter
	delivered      *obs.Counter
	outOfOrder     *obs.Counter
	corrupted      *obs.Counter
	truncated      *obs.Counter
	duplicated     *obs.Counter
	forgedInjected *obs.Counter
	forgedRejected *obs.Counter
}

// newRunMetrics registers the netsim.* instruments; the adversarial-channel
// counters are registered only for faulted runs so a fault-free registry
// dump is unchanged by this feature.
func newRunMetrics(reg *obs.Registry, faultsOn bool) *runMetrics {
	if reg == nil {
		return nil
	}
	m := &runMetrics{
		sent:       reg.Counter("netsim.sent"),
		dropped:    reg.Counter("netsim.dropped"),
		delivered:  reg.Counter("netsim.delivered"),
		outOfOrder: reg.Counter("netsim.delivered_out_of_order"),
	}
	if faultsOn {
		m.corrupted = reg.Counter("netsim.corrupted")
		m.truncated = reg.Counter("netsim.truncated")
		m.duplicated = reg.Counter("netsim.duplicated")
		m.forgedInjected = reg.Counter("netsim.forged_injected")
		m.forgedRejected = reg.Counter("netsim.forged_rejected")
	}
	return m
}

// blockPlan is the per-run sender-side state shared by every receiver:
// the authenticated wire sequence, its timing, the reliability set, and
// the cached instruments. Built once by prepareBlock for both the flat
// Run and the overlay RunOverlay entry points.
type blockPlan struct {
	pkts      []*packet.Packet
	reliable  map[uint32]bool
	sendTimes []time.Time
	wires     [][]byte // encoded wire images; only for faulted runs
	metrics   *runMetrics
}

// prepareBlock authenticates the block and derives the sender-side plan.
// adversarial forces registration of the forgery counters even without a
// wire-fault injector (the overlay's forged-repair path needs them).
func prepareBlock(s scheme.Scheme, cfg Config, blockID uint64, payloads [][]byte, adversarial bool) (*blockPlan, error) {
	if s == nil {
		return nil, fmt.Errorf("netsim: nil scheme")
	}
	pkts, err := s.Authenticate(blockID, payloads)
	if err != nil {
		return nil, fmt.Errorf("netsim: authenticate: %w", err)
	}
	reliable := make(map[uint32]bool, len(cfg.ReliableIndices))
	if cfg.SigRetransmits > 0 {
		// Real recovery replaces the assumption: each "reliable" index is
		// re-sent at the tail of the block, and every copy is subject to
		// loss, delay and faults like any other packet.
		orig := pkts
		for k := 0; k < cfg.SigRetransmits; k++ {
			for _, idx := range cfg.ReliableIndices {
				for _, p := range orig {
					if p.Index == idx {
						pkts = append(pkts, p)
						break
					}
				}
			}
		}
	} else {
		for _, idx := range cfg.ReliableIndices {
			reliable[idx] = true
		}
	}
	sendTimes := make([]time.Time, len(pkts))
	for w := range pkts {
		sendTimes[w] = cfg.Start.Add(time.Duration(w) * cfg.SendInterval)
	}
	faultsOn := cfg.Faults != nil && cfg.Faults.Enabled()
	// The adversary mutates wire bytes, so faulted runs need each packet's
	// encoding; encode once here rather than per receiver.
	var wires [][]byte
	if faultsOn {
		// One backing array for all wire images: encode append-style into a
		// shared buffer and slice it per packet. The buffer is only read
		// (mutations copy) once the receiver goroutines start.
		wires = make([][]byte, len(pkts))
		size := 0
		for _, p := range pkts {
			size += p.EncodedSize()
		}
		backing := make([]byte, 0, size)
		for w, p := range pkts {
			start := len(backing)
			backing, err = p.AppendEncode(backing)
			if err != nil {
				return nil, fmt.Errorf("netsim: encode wire %d: %w", w+1, err)
			}
			wires[w] = backing[start:len(backing):len(backing)]
		}
	}

	metrics := newRunMetrics(cfg.Metrics, faultsOn || adversarial)
	if cfg.Tracer != nil {
		// One run_meta record leads the trace so offline tooling (mcreport)
		// can interpret it without re-supplying the run's flags: scheme
		// name, wire count, and the signature packet's index (the first
		// reliable index, by the layer convention that ReliableIndices
		// leads with P_sign).
		meta := obs.Event{
			Type: obs.EventRunMeta, Receiver: -1, Scheme: s.Name(),
			Wire: len(pkts), Block: blockID, TimeNS: obs.TimeNS(cfg.Start),
		}
		if len(cfg.ReliableIndices) > 0 {
			meta.Root = cfg.ReliableIndices[0]
		}
		cfg.Tracer.Emit(meta)
		for w, p := range pkts {
			cfg.Tracer.Emit(obs.Event{
				Type: obs.EventSent, Receiver: -1, Wire: w + 1,
				Index: p.Index, Block: p.BlockID, TimeNS: obs.TimeNS(sendTimes[w]),
			})
		}
	}
	if metrics != nil {
		metrics.sent.Add(int64(len(pkts)))
	}
	return &blockPlan{
		pkts:      pkts,
		reliable:  reliable,
		sendTimes: sendTimes,
		wires:     wires,
		metrics:   metrics,
	}, nil
}

// receiverStreams derives every receiver's RNG stream and join position
// from the run seed. All root RNG use happens here, before the receiver
// goroutines start, so the concurrent phase never touches shared RNG
// state — and results cannot depend on the worker count.
func receiverStreams(cfg Config, wireCount int) ([]*stats.RNG, []int) {
	root := stats.NewRNG(cfg.Seed)
	rngs := make([]*stats.RNG, cfg.Receivers)
	for r := range rngs {
		rngs[r] = root.Split()
	}
	joinAt := make([]int, cfg.Receivers)
	for r := range joinAt {
		joinAt[r] = 1
		if r >= cfg.Receivers-cfg.LateJoiners && wireCount > 1 {
			joinAt[r] = 2 + root.Intn(wireCount-1)
		}
	}
	return rngs, joinAt
}

// Run authenticates one block with the scheme and simulates its multicast
// to every receiver.
func Run(s scheme.Scheme, cfg Config, blockID uint64, payloads [][]byte) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	plan, err := prepareBlock(s, cfg, blockID, payloads, false)
	if err != nil {
		return nil, err
	}
	rngs, joinAt := receiverStreams(cfg, len(plan.pkts))
	result := &Result{
		WireCount:   len(plan.pkts),
		PerReceiver: make([]ReceiverReport, cfg.Receivers),
	}
	err = parallel.ForEach(cfg.Workers, rngs, func(r int, rng *stats.RNG) error {
		report, err := runReceiver(s, cfg, r, plan, joinAt[r], rng, cfg.Loss, nil)
		if err != nil {
			return err
		}
		result.PerReceiver[r] = report
		return nil
	})
	if err != nil {
		return nil, err
	}
	return result, nil
}

type arrival struct {
	wire int // 0-based position in pkts
	at   time.Time
	// p is the decoded packet the verifier will see: the genuine packet
	// for pass deliveries, a re-decoded mutation or forgery otherwise.
	p    *packet.Packet
	kind fault.Kind
}

// repairPlan is a receiver's view of its serving leaf relay: which wires
// the relay serves at all (mask — loss upstream of the relay is absolute,
// even for ReliableIndices packets: the never-lost assumption only models
// last-hop reliability, it cannot conjure bytes the relay never had),
// which lost wire positions a NACK signature repair can recover, how much
// upstream repair lateness each wire already carries, the last-hop repair
// round trip, and — for the adversarial forged-repair scenario — a
// poisoned twin served instead of the genuine packet. nil means no relay
// (the flat topology).
type repairPlan struct {
	mask       []bool           // 1-based wire set the relay serves; nil = everything
	available  []bool           // by 0-based wire position: repairable from the relay store; nil = relays off
	extraDelay []time.Duration  // per-wire lateness inherited from upstream repairs
	rtt        time.Duration    // one NACK round trip to the local relay
	forged     []*packet.Packet // non-nil: the relay store is poisoned; forged[w] replaces repairs of wire w
}

func runReceiver(
	s scheme.Scheme,
	cfg Config,
	recv int,
	plan *blockPlan,
	joinAt int,
	rng *stats.RNG,
	lossModel loss.Model,
	rp *repairPlan,
) (ReceiverReport, error) {
	pkts, wires, sendTimes := plan.pkts, plan.wires, plan.sendTimes
	reliable, metrics := plan.reliable, plan.metrics
	maxIndex := uint32(0)
	for _, p := range pkts {
		if p.Index > maxIndex {
			maxIndex = p.Index
		}
	}
	report := ReceiverReport{
		JoinedAtWire:    joinAt,
		ReceivedByIndex: make([]bool, maxIndex+1),
		VerifiedByIndex: make([]bool, maxIndex+1),
	}
	var tracer obs.Tracer
	if cfg.Tracer != nil {
		tracer = obs.ReceiverTracer{T: cfg.Tracer, Receiver: recv}
	}
	drop := func(w int, p *packet.Packet, reason string) {
		report.Lost++
		if metrics != nil {
			metrics.dropped.Inc()
		}
		if tracer != nil {
			tracer.Emit(obs.Event{
				Type: obs.EventDropped, Wire: w + 1, Index: p.Index,
				Block: p.BlockID, TimeNS: obs.TimeNS(sendTimes[w]), Reason: reason,
			})
		}
	}
	// noteFault tallies one adversarial delivery and traces it. Corruption
	// and truncation share EventCorrupted with a distinguishing reason.
	noteFault := func(w int, p *packet.Packet, at time.Time, k fault.Kind) {
		var (
			typ    obs.EventType
			reason string
		)
		switch k {
		case fault.KindCorrupted:
			report.Corrupted++
			if metrics != nil {
				metrics.corrupted.Inc()
			}
			typ, reason = obs.EventCorrupted, "corrupted"
		case fault.KindTruncated:
			report.Truncated++
			if metrics != nil {
				metrics.truncated.Inc()
			}
			typ, reason = obs.EventCorrupted, "truncated"
		case fault.KindDuplicate:
			report.Duplicated++
			if metrics != nil {
				metrics.duplicated.Inc()
			}
			return
		case fault.KindForged:
			report.ForgedInjected++
			if metrics != nil {
				metrics.forgedInjected.Inc()
			}
			typ = obs.EventForgedInjected
		default:
			return
		}
		if tracer != nil {
			tracer.Emit(obs.Event{
				Type: typ, Wire: w + 1, Index: p.Index,
				Block: p.BlockID, TimeNS: obs.TimeNS(at), Reason: reason,
			})
		}
	}
	forgedRejected := func(w int, p *packet.Packet, at time.Time) {
		report.ForgedRejected++
		if metrics != nil {
			metrics.forgedRejected.Inc()
		}
		if tracer != nil {
			tracer.Emit(obs.Event{
				Type: obs.EventForgedRejected, Wire: w + 1, Index: p.Index,
				Block: p.BlockID, TimeNS: obs.TimeNS(at),
			})
		}
	}
	faultsOn := cfg.Faults != nil && cfg.Faults.Enabled()
	// The overlay's forged-repair path injects adversarial deliveries with
	// no wire-fault injector, and needs the same ingest tolerance.
	adversarial := faultsOn || (rp != nil && rp.forged != nil)
	var inj *fault.Injector
	if faultsOn {
		in, err := fault.NewInjector(*cfg.Faults, rng.Split())
		if err != nil {
			return ReceiverReport{}, fmt.Errorf("netsim: %w", err)
		}
		inj = in
	}
	received := lossModel.Sample(rng, len(pkts))
	var arrivals []arrival
	for w, p := range pkts {
		if w+1 < joinAt {
			drop(w, p, "late_join")
			continue
		}
		if rp != nil && rp.mask != nil && !rp.mask[w+1] {
			// The serving relay never had this wire: nothing arrives and
			// nothing can be repaired from its store.
			drop(w, p, "loss")
			continue
		}
		if !received[w+1] && !reliable[p.Index] {
			if rp != nil && rp.available != nil && rp.available[w] {
				// Lost on the last hop, but the local relay holds the
				// signature packet: one NACK round trip later the repair
				// arrives — or, from a poisoned store, a forged twin the
				// verifier must refuse.
				at := sendTimes[w].Add(cfg.Delay.Sample(rng)).Add(rp.extraDelay[w] + rp.rtt)
				if rp.forged != nil && rp.forged[w] != nil {
					fp := rp.forged[w]
					noteFault(w, fp, at, fault.KindForged)
					arrivals = append(arrivals, arrival{wire: w, at: at, p: fp, kind: fault.KindForged})
					continue
				}
				report.Repaired++
				arrivals = append(arrivals, arrival{wire: w, at: at, p: p})
				continue
			}
			drop(w, p, "loss")
			continue
		}
		at := sendTimes[w].Add(cfg.Delay.Sample(rng))
		if rp != nil {
			at = at.Add(rp.extraDelay[w])
		}
		if inj == nil {
			arrivals = append(arrivals, arrival{wire: w, at: at, p: p})
			continue
		}
		for _, d := range inj.Apply(wires[w], p) {
			dp := p
			if d.Kind != fault.KindPass {
				decoded, derr := packet.Decode(d.Wire)
				if decoded != nil {
					dp = decoded
				}
				noteFault(w, dp, at, d.Kind)
				if derr != nil {
					// The mutation destroyed the framing; the datagram
					// dies at the parser — equivalent to a channel drop.
					if tracer != nil {
						tracer.Emit(obs.Event{
							Type: obs.EventDropped, Wire: w + 1, Index: p.Index,
							Block: p.BlockID, TimeNS: obs.TimeNS(at), Reason: d.Kind.String(),
						})
					}
					continue
				}
			}
			arrivals = append(arrivals, arrival{wire: w, at: at.Add(d.Delay), p: dp, kind: d.Kind})
		}
	}
	// Deliver in arrival order: jitter reorders packets naturally.
	sort.Slice(arrivals, func(i, j int) bool { return arrivals[i].at.Before(arrivals[j].at) })

	v, err := s.NewVerifier()
	if err != nil {
		return ReceiverReport{}, fmt.Errorf("netsim: new verifier: %w", err)
	}
	if in, ok := v.(obs.Instrumented); ok {
		if tracer != nil {
			in.SetTracer(tracer)
		}
		if cfg.Metrics != nil {
			in.SetMetrics(cfg.Metrics)
		}
	}
	if bb, ok := v.(scheme.BufferBounded); ok && cfg.MaxBuffered > 0 {
		bb.SetMaxBuffered(cfg.MaxBuffered)
	}
	arrivedAt := make(map[uint32]time.Time, len(arrivals))
	maxWireSeen := -1
	for _, a := range arrivals {
		p := a.p
		report.Delivered++
		genuine := a.kind == fault.KindPass || a.kind == fault.KindDuplicate
		if genuine && int(p.Index) < len(report.ReceivedByIndex) {
			report.ReceivedByIndex[p.Index] = true
			arrivedAt[p.Index] = a.at
		}
		outOfOrder := a.wire < maxWireSeen
		if a.wire > maxWireSeen {
			maxWireSeen = a.wire
		}
		if metrics != nil {
			metrics.delivered.Inc()
			if outOfOrder {
				metrics.outOfOrder.Inc()
			}
		}
		if tracer != nil {
			// Non-genuine deliveries (mutated or forged datagrams) carry
			// their fault kind, so a trace reader can recover which indices
			// genuinely arrived — the receive pattern the diagnosis join
			// feeds into the dependence graph.
			var reason string
			if !genuine {
				reason = a.kind.String()
			}
			tracer.Emit(obs.Event{
				Type: obs.EventDelivered, Wire: a.wire + 1, Index: p.Index,
				Block: p.BlockID, TimeNS: obs.TimeNS(a.at), OutOfOrder: outOfOrder,
				Reason: reason,
			})
		}
		var before verifier.Stats
		if a.kind == fault.KindForged {
			before = v.Stats()
		}
		events, err := v.Ingest(p, a.at)
		if err != nil {
			if !adversarial {
				return ReceiverReport{}, fmt.Errorf("netsim: ingest wire %d: %w", a.wire+1, err)
			}
			// Under an adversarial channel a refused delivery (index out
			// of range after a bit flip, block mismatch, ...) is expected
			// input, not a programming error: count it and keep going.
			report.InvalidDeliveries++
			if a.kind == fault.KindForged {
				forgedRejected(a.wire, p, a.at)
			}
			continue
		}
		if a.kind == fault.KindForged && v.Stats().Rejected > before.Rejected {
			forgedRejected(a.wire, p, a.at)
		}
		for _, e := range events {
			if adversarial && fault.IsForgedPayload(e.Payload) {
				// Security invariant violation: a fabricated packet made it
				// through verification. Surfaced in the report (and asserted
				// zero by the chaos soak), never silently counted as a win.
				report.ForgedAuthenticated++
				continue
			}
			if int(e.Index) < len(report.VerifiedByIndex) {
				report.VerifiedByIndex[e.Index] = true
			}
			if t0, ok := arrivedAt[e.Index]; ok {
				report.AuthLatencies = append(report.AuthLatencies, a.at.Sub(t0))
			}
		}
	}
	report.Stats = v.Stats()
	return report, nil
}

// AuthRatioByIndex aggregates, across receivers, the fraction of receivers
// that verified each wire index among those that received it — the
// empirical q_i of the paper's definition.
func (r *Result) AuthRatioByIndex() map[uint32]float64 {
	receivedCount := make([]int, r.maxIndex()+1)
	verifiedCount := make([]int, r.maxIndex()+1)
	for i := range r.PerReceiver {
		rep := &r.PerReceiver[i]
		for idx := 1; idx < len(rep.ReceivedByIndex); idx++ {
			if !rep.ReceivedByIndex[idx] {
				continue
			}
			receivedCount[idx]++
			if rep.Verified(uint32(idx)) {
				verifiedCount[idx]++
			}
		}
	}
	out := make(map[uint32]float64)
	for idx, rc := range receivedCount {
		if rc > 0 {
			out[uint32(idx)] = float64(verifiedCount[idx]) / float64(rc)
		}
	}
	return out
}

func (r *Result) maxIndex() int {
	max := 0
	for i := range r.PerReceiver {
		if n := len(r.PerReceiver[i].ReceivedByIndex) - 1; n > max {
			max = n
		}
	}
	return max
}

// Counts returns total received and verified tallies for a wire index
// across receivers, for confidence-interval computation.
func (r *Result) Counts(index uint32) (received, verified int) {
	for i := range r.PerReceiver {
		rep := &r.PerReceiver[i]
		if rep.Received(index) {
			received++
			if rep.Verified(index) {
				verified++
			}
		}
	}
	return received, verified
}

// MinAuthRatio returns the minimum empirical q_i over the given wire
// indices (use the data-packet indices of the scheme).
func (r *Result) MinAuthRatio(indices []uint32) float64 {
	ratios := r.AuthRatioByIndex()
	minRatio := 1.0
	for _, idx := range indices {
		ratio, ok := ratios[idx]
		if !ok {
			// Never received across all receivers: treat as 0.
			return 0
		}
		if ratio < minRatio {
			minRatio = ratio
		}
	}
	return minRatio
}

// TotalAuthenticated sums verifier-authenticated packets across receivers.
func (r *Result) TotalAuthenticated() int {
	total := 0
	for _, rep := range r.PerReceiver {
		total += rep.Stats.Authenticated
	}
	return total
}

// TotalRepaired sums the relay-served last-hop signature repairs across
// receivers; always zero for flat runs.
func (r *Result) TotalRepaired() int {
	total := 0
	for i := range r.PerReceiver {
		total += r.PerReceiver[i].Repaired
	}
	return total
}

// FaultTotals aggregates the adversarial-channel tallies across receivers.
type FaultTotals struct {
	Corrupted           int
	Truncated           int
	Duplicated          int
	ForgedInjected      int
	ForgedRejected      int
	ForgedAuthenticated int
	InvalidDeliveries   int
}

// FaultTotals sums each receiver's adversarial-channel counters; all zero
// for fault-free runs.
func (r *Result) FaultTotals() FaultTotals {
	var t FaultTotals
	for i := range r.PerReceiver {
		rep := &r.PerReceiver[i]
		t.Corrupted += rep.Corrupted
		t.Truncated += rep.Truncated
		t.Duplicated += rep.Duplicated
		t.ForgedInjected += rep.ForgedInjected
		t.ForgedRejected += rep.ForgedRejected
		t.ForgedAuthenticated += rep.ForgedAuthenticated
		t.InvalidDeliveries += rep.InvalidDeliveries
	}
	return t
}

// MaxBufferHighWater returns the largest pending message-buffer high-water
// mark any receiver's verifier reached — the quantity Config.MaxBuffered
// bounds.
func (r *Result) MaxBufferHighWater() int {
	max := 0
	for i := range r.PerReceiver {
		if hw := r.PerReceiver[i].Stats.MsgBufferHighWater; hw > max {
			max = hw
		}
	}
	return max
}
