// Overlay fan-out: RunOverlay simulates the relay tier ROADMAP item 2
// calls for. The source multicasts one authenticated block down a
// loss.TreeModel of relays; each relay forwards what its feeding edge
// delivered, optionally serves NACK signature repairs from its local
// store (absorbing recovery traffic near the edge instead of at the
// signer), and peer-samples the others to flag signature withholding.
// Receivers attach round-robin to the leaf relays and run through the
// exact flat-netsim receiver loop, so with lossless tree edges and relays
// off an overlay run is bit-identical to Run — the conformance anchor
// that lets the overlay inherit the flat tier's validation against the
// analytic and Monte-Carlo layers.
//
// Determinism contract: the tree phase is sequential and draws nothing
// from the receiver RNGs; edge patterns come from the tree seed, the
// audit from a per-relay derived seed, and receiver streams are split
// from the run seed before the concurrent phase — so results are
// byte-identical at any worker count, at 10^5-10^6 receivers.
package netsim

import (
	"fmt"
	"time"

	"mcauth/internal/fault"
	"mcauth/internal/loss"
	"mcauth/internal/packet"
	"mcauth/internal/parallel"
	"mcauth/internal/scheme"
	"mcauth/internal/stats"
)

// Overlay defaults: a 40ms NACK round trip is a continental-scale repair
// cost, and three peer samples already give a majority view in small
// trees.
const (
	defaultRepairRTT   = 40 * time.Millisecond
	defaultPeerSamples = 3
)

// OverlayConfig parameterizes the relay tier of an overlay run. The base
// Config supplies everything else; its Loss field is ignored (the tree's
// leaf model is the last hop) and its Faults field must be nil — the
// overlay's adversary is the relay itself (withholding, forged repairs),
// not the wire.
type OverlayConfig struct {
	// Tree is the relay topology with its per-edge loss processes and the
	// per-receiver last-hop model.
	Tree *loss.TreeModel
	// Relays enables the relay behaviors: upstream NACK signature repairs
	// between relays and last-hop repairs to receivers. Off, relays are
	// passive forwarders and the run measures raw tree loss.
	Relays bool
	// RepairRTT is one NACK round trip to the serving relay; 0 selects
	// the default. Each upstream repair a wire needed adds one RTT of
	// lateness that the whole subtree inherits.
	RepairRTT time.Duration
	// Withhold lists relay nodes that serve no signature-class packets
	// downstream — neither forwarded nor as repairs. The audit exists to
	// flag them.
	Withhold []int
	// PeerSamples is how many peers each relay samples for the
	// withholding audit; <= 0 selects the default.
	PeerSamples int
	// ForgeRepairs lists relay nodes whose repair stores are poisoned:
	// repairs they serve carry a fabricated payload under the genuine
	// header. The security invariant is that no such repair ever
	// authenticates downstream. Requires Relays.
	ForgeRepairs []int
}

// validate checks the overlay parameters against the tree.
func (o OverlayConfig) validate() error {
	if o.Tree == nil {
		return fmt.Errorf("netsim: overlay needs a tree")
	}
	nodes := o.Tree.Nodes()
	for _, e := range o.Withhold {
		if e < 1 || e >= nodes {
			return fmt.Errorf("netsim: withhold node %d out of [1,%d)", e, nodes)
		}
	}
	for _, e := range o.ForgeRepairs {
		if e < 1 || e >= nodes {
			return fmt.Errorf("netsim: forge-repairs node %d out of [1,%d)", e, nodes)
		}
	}
	if len(o.ForgeRepairs) > 0 && !o.Relays {
		return fmt.Errorf("netsim: forged repairs need relays enabled")
	}
	return nil
}

// RelayReport summarizes one relay node's run.
type RelayReport struct {
	Node   int
	Parent int  // -1 for the source
	Leaf   bool // receivers attach here
	// Received counts wire positions present in this relay's store after
	// its feeding edge and any upstream repairs.
	Received int
	// UpstreamRepaired counts signature wires this relay lost on its
	// feeding edge and recovered by NACKing its parent.
	UpstreamRepaired int
	// Forwarded counts wire positions this relay serves downstream; a
	// withholding relay excludes the signature class.
	Forwarded int
	// ServedRepairs counts last-hop signature repairs served to attached
	// receivers (leaf relays only).
	ServedRepairs int
	// Withheld echoes membership in OverlayConfig.Withhold.
	Withheld bool
	// Flagged reports whether the peer-sampling audit flagged this relay
	// as a withholder.
	Flagged bool
}

// OverlayResult extends the flat Result with the relay tier's view.
type OverlayResult struct {
	Result
	// Relays holds one report per tree node (index = node; node 0 is the
	// source and never repairs, withholds or gets flagged).
	Relays []RelayReport
	// Flagged lists the relay nodes the withholding audit flagged,
	// ascending.
	Flagged []int
}

// RunOverlay authenticates one block and simulates its fan-out through
// the relay tree to every receiver. cfg.Loss is ignored (the tree's leaf
// model is the last hop) and cfg.Faults must be nil; everything else
// (receivers, delay, timing, retransmits, late joiners, workers, tracer,
// metrics) keeps its flat-run meaning — with one overlay-specific
// refinement: ReliableIndices only models last-hop reliability. A wire
// the tree never delivered to a receiver's relay cannot arrive, reliable
// or not; only relay repairs recover it. Use SigRetransmits to subject
// the signature class to real loss end to end.
func RunOverlay(s scheme.Scheme, cfg Config, ocfg OverlayConfig, blockID uint64, payloads [][]byte) (*OverlayResult, error) {
	if err := ocfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Faults != nil {
		return nil, fmt.Errorf("netsim: overlay runs take no wire-fault injector; the adversary is the relay")
	}
	leafModel := ocfg.Tree.LeafModel()
	vcfg := cfg
	vcfg.Loss = leafModel
	if vcfg.Loss == nil {
		vcfg.Loss = loss.Bernoulli{}
	}
	if err := vcfg.Validate(); err != nil {
		return nil, err
	}
	repairRTT := ocfg.RepairRTT
	if repairRTT <= 0 {
		repairRTT = defaultRepairRTT
	}
	peerSamples := ocfg.PeerSamples
	if peerSamples <= 0 {
		peerSamples = defaultPeerSamples
	}
	forging := len(ocfg.ForgeRepairs) > 0
	plan, err := prepareBlock(s, vcfg, blockID, payloads, forging)
	if err != nil {
		return nil, err
	}
	n := len(plan.pkts)

	// The signature class by wire position: the wires carrying the
	// ReliableIndices packets (P_sign and bootstrap packets), including
	// their SigRetransmits tail copies. These are what NACK repairs can
	// recover and what a withholder suppresses.
	sigSet := make(map[uint32]bool, len(cfg.ReliableIndices))
	for _, idx := range cfg.ReliableIndices {
		sigSet[idx] = true
	}
	sigWire := make([]bool, n)
	for w, p := range plan.pkts {
		sigWire[w] = sigSet[p.Index]
	}

	nodes := ocfg.Tree.Nodes()
	withheld := make([]bool, nodes)
	for _, e := range ocfg.Withhold {
		withheld[e] = true
	}
	poisoned := make([]bool, nodes)
	for _, e := range ocfg.ForgeRepairs {
		poisoned[e] = true
	}

	// Tree phase, sequential and RNG-free with respect to the receiver
	// streams. serve[e] is the 1-based wire set node e offers downstream
	// (store minus the signature class when withholding); extra[e] is the
	// per-wire lateness its subtree inherits from upstream repairs.
	serve := make([][]bool, nodes)
	extra := make([][]time.Duration, nodes)
	reports := make([]RelayReport, nodes)
	scratch := make([]bool, n+1)
	for e := 0; e < nodes; e++ {
		store := make([]bool, n+1)
		lateness := make([]time.Duration, n)
		rep := RelayReport{Node: e, Parent: ocfg.Tree.Parent(e), Withheld: withheld[e]}
		if e == 0 {
			for i := 1; i <= n; i++ {
				store[i] = true
			}
			rep.Received = n
		} else {
			parent := ocfg.Tree.Parent(e)
			ocfg.Tree.EdgePatternInto(e, scratch)
			ps, px := serve[parent], extra[parent]
			for w := 0; w < n; w++ {
				lateness[w] = px[w]
				if ps[w+1] && scratch[w+1] {
					store[w+1] = true
					rep.Received++
					continue
				}
				if ocfg.Relays && !withheld[e] && sigWire[w] && ps[w+1] {
					// Lost on the feeding edge but present upstream: NACK
					// the parent for the signature packet. The repair lands
					// one RTT late, and the whole subtree inherits that
					// lateness for this wire.
					store[w+1] = true
					lateness[w] = px[w] + repairRTT
					rep.Received++
					rep.UpstreamRepaired++
				}
			}
		}
		sv := store
		if withheld[e] {
			sv = make([]bool, n+1)
			copy(sv, store)
			for w := 0; w < n; w++ {
				if sigWire[w] {
					sv[w+1] = false
				}
			}
		}
		for w := 0; w < n; w++ {
			if sv[w+1] {
				rep.Forwarded++
			}
		}
		serve[e] = sv
		extra[e] = lateness
		reports[e] = rep
	}

	// Withholding audit: each relay publishes whether it serves any
	// signature-class wire (in the served tier this is a block-root
	// exchange); every relay peer-samples the others and compares. A
	// relay is flagged when its parent serves the signature class, it
	// does not, and a majority of its sampled peers do — the withholding
	// *frontier*. Its descendants also serve nothing, but they are
	// victims, not culprits: their parent offers no signature class
	// either, which is observable from below and exonerates them. With
	// relays on, an honest relay whose parent serves always serves too
	// (the repair path guarantees it), so an unflagged signature gap
	// above a healthy relay is evidence of upstream loss, not malice.
	servesSig := func(e int) bool {
		for w := 0; w < n; w++ {
			if sigWire[w] && serve[e][w+1] {
				return true
			}
		}
		return false
	}
	var flagged []int
	if ocfg.Relays && len(cfg.ReliableIndices) > 0 && nodes > 2 {
		for e := 1; e < nodes; e++ {
			if servesSig(e) || !servesSig(ocfg.Tree.Parent(e)) {
				continue
			}
			rng := stats.NewRNG((cfg.Seed ^ 0x7065657273616d70) + uint64(e)*0x9E3779B97F4A7C15)
			serving := 0
			for k := 0; k < peerSamples; k++ {
				peer := 1 + rng.Intn(nodes-1)
				for peer == e {
					peer = 1 + rng.Intn(nodes-1)
				}
				if servesSig(peer) {
					serving++
				}
			}
			if serving*2 > peerSamples {
				reports[e].Flagged = true
				flagged = append(flagged, e)
			}
		}
	}

	// Forged twins for the poisoned-store scenario: the genuine header
	// and authentication material with a fabricated payload, so the
	// verifier's signature check — not any simulator shortcut — is what
	// rejects it.
	var forgedTwins []*packet.Packet
	if forging {
		forgedTwins = make([]*packet.Packet, n)
		for w, p := range plan.pkts {
			if !sigWire[w] {
				continue
			}
			fp := *p
			fp.Payload = fault.ForgedPayload(cfg.Seed + uint64(w)*0x9E3779B97F4A7C15)
			forgedTwins[w] = &fp
		}
	}

	leaves := ocfg.Tree.Leaves()
	leafIsLeaf := make([]bool, nodes)
	for _, lf := range leaves {
		leafIsLeaf[lf] = true
	}
	for e := range reports {
		reports[e].Leaf = leafIsLeaf[e]
	}
	leafPlan := make([]*repairPlan, len(leaves))
	for li, leafNode := range leaves {
		rp := &repairPlan{mask: serve[leafNode], extraDelay: extra[leafNode], rtt: repairRTT}
		if ocfg.Relays {
			avail := make([]bool, n)
			for w := 0; w < n; w++ {
				avail[w] = sigWire[w] && serve[leafNode][w+1]
			}
			rp.available = avail
			if poisoned[leafNode] {
				rp.forged = forgedTwins
			}
		}
		leafPlan[li] = rp
	}

	rngs, joinAt := receiverStreams(cfg, n)
	result := &OverlayResult{
		Result: Result{
			WireCount:   n,
			PerReceiver: make([]ReceiverReport, cfg.Receivers),
		},
		Relays:  reports,
		Flagged: flagged,
	}
	err = parallel.ForEach(cfg.Workers, rngs, func(r int, rng *stats.RNG) error {
		li := r % len(leaves)
		report, err := runReceiver(s, vcfg, r, plan, joinAt[r], rng, vcfg.Loss, leafPlan[li])
		if err != nil {
			return err
		}
		result.PerReceiver[r] = report
		return nil
	})
	if err != nil {
		return nil, err
	}
	for r := range result.PerReceiver {
		result.Relays[leaves[r%len(leaves)]].ServedRepairs += result.PerReceiver[r].Repaired
	}
	if cfg.Metrics != nil {
		var (
			forwarded = cfg.Metrics.Counter("relay.forwarded")
			upstream  = cfg.Metrics.Counter("relay.upstream_repairs")
			served    = cfg.Metrics.Counter("relay.receiver_repairs")
			wh        = cfg.Metrics.Counter("relay.withheld")
			fl        = cfg.Metrics.Counter("relay.withholding_flagged")
		)
		for e := 1; e < nodes; e++ {
			rep := &result.Relays[e]
			forwarded.Add(int64(rep.Forwarded))
			upstream.Add(int64(rep.UpstreamRepaired))
			served.Add(int64(rep.ServedRepairs))
			if rep.Withheld {
				wh.Inc()
			}
			if rep.Flagged {
				fl.Inc()
			}
		}
	}
	return result, nil
}
