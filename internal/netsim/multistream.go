package netsim

import (
	"errors"
	"fmt"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/loss"
	"mcauth/internal/obs"
	"mcauth/internal/scheme"
	"mcauth/internal/server"
	"mcauth/internal/stats"
	"mcauth/internal/stream"
)

// MultiStreamConfig drives a served-scenario simulation: a live
// internal/server instance multiplexing many streams, each subscriber a
// receiver behind independent Bernoulli-style loss. Unlike Run (one
// sender, virtual time), this exercises the real concurrent serving path
// end to end — sharding, batch signing, flush deadlines, subscriber
// queues — with loss applied between server and receiver.
type MultiStreamConfig struct {
	// Streams is how many independent authenticated streams to open
	// (IDs 1..Streams).
	Streams int
	// BlocksPerStream is how many full blocks each stream publishes.
	BlocksPerStream int
	// Scheme builds stream id's scheme from the server's batch-capable
	// signer. Nil defaults to an 8-packet EMSS-style chain via the
	// caller; Scheme is required.
	Scheme func(id uint64, signer crypto.Signer) (scheme.Scheme, error)
	// Receivers is how many independent lossy subscribers to attach.
	Receivers int
	// Loss is the per-receiver loss process (nil = lossless).
	Loss loss.Model
	// Seed derives every receiver's RNG.
	Seed uint64
	// BatchSize / FlushInterval configure the server's batch signer.
	BatchSize     int
	FlushInterval time.Duration
	// Metrics receives the server.* instruments (nil disables).
	Metrics *obs.Registry
}

// MultiStreamResult aggregates a served-scenario run.
type MultiStreamResult struct {
	// Published is the total messages accepted across all streams.
	Published int
	// AuthRatio is authenticated/published averaged over receivers;
	// MinAuthRatio is the worst single receiver.
	AuthRatio    float64
	MinAuthRatio float64
	// SubscriberDrops counts packets lost to subscriber backpressure
	// (on top of the configured loss process).
	SubscriberDrops int64
	// Amortization is the server's signature amortization ratio
	// (block roots per underlying signature).
	Amortization float64
}

// RunMultiStream executes the scenario and tears the server down.
func RunMultiStream(cfg MultiStreamConfig) (*MultiStreamResult, error) {
	if cfg.Streams < 1 || cfg.BlocksPerStream < 1 || cfg.Receivers < 1 {
		return nil, errors.New("netsim: streams, blocks and receivers must be >= 1")
	}
	if cfg.Scheme == nil {
		return nil, errors.New("netsim: nil scheme factory")
	}
	key := crypto.NewSignerFromString(fmt.Sprintf("mcauth-multistream-%d", cfg.Seed))
	srv, err := server.New(server.Config{
		Signer:        key,
		BatchSize:     cfg.BatchSize,
		FlushInterval: cfg.FlushInterval,
		// Large enough that subscriber loss is the configured process,
		// not queue overflow, at simulation speeds.
		MaxSubscriberQueue: 1 << 16,
		Metrics:            cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	blockSizes := make(map[uint64]int, cfg.Streams)
	for id := uint64(1); id <= uint64(cfg.Streams); id++ {
		id := id
		if err := srv.OpenStream(id, func(signer crypto.Signer) (scheme.Scheme, error) {
			s, err := cfg.Scheme(id, signer)
			if err == nil {
				blockSizes[id] = s.BlockSize()
			}
			return s, err
		}); err != nil {
			srv.Close()
			return nil, err
		}
	}

	type recvResult struct {
		authenticated int
		err           error
	}
	root := stats.NewRNG(cfg.Seed)
	results := make([]chan recvResult, cfg.Receivers)
	subs := make([]*server.Subscriber, cfg.Receivers)
	for r := 0; r < cfg.Receivers; r++ {
		sub, err := srv.Subscribe()
		if err != nil {
			srv.Close()
			return nil, err
		}
		subs[r] = sub
		rng := root.Split()
		done := make(chan recvResult, 1)
		results[r] = done
		go func() {
			// Receiver-side verifier stack: an independent scheme
			// instance per stream (same key, so signatures verify),
			// behind the standard demux.
			dmx, err := stream.NewDemux(func(id uint64) (*stream.Receiver, error) {
				s, err := cfg.Scheme(id, crypto.BatchCapable(key))
				if err != nil {
					return nil, err
				}
				return stream.NewReceiver(s, cfg.BlocksPerStream+2)
			}, cfg.Streams)
			if err != nil {
				done <- recvResult{err: err}
				return
			}
			res := recvResult{}
			for d := range sub.C() {
				if cfg.Loss != nil && rng.Bernoulli(cfg.Loss.Rate()) {
					continue
				}
				auths, err := dmx.Ingest(d.StreamID, d.Packet, time.Now())
				if err != nil {
					res.err = err
					break
				}
				for _, a := range auths {
					// Deadline flushes pad partial blocks with
					// empty payloads; count only real messages.
					if len(a.Payload) > 0 {
						res.authenticated++
					}
				}
			}
			done <- res
		}()
	}

	published := 0
	for id := uint64(1); id <= uint64(cfg.Streams); id++ {
		n := blockSizes[id] * cfg.BlocksPerStream
		for i := 0; i < n; i++ {
			if err := srv.Publish(id, []byte(fmt.Sprintf("s%d-m%d", id, i))); err != nil {
				srv.Close()
				return nil, err
			}
			published++
		}
	}
	amort := func() float64 { return srv.BatchTotals().AmortizationRatio() }
	if err := srv.Close(); err != nil {
		return nil, err
	}

	out := &MultiStreamResult{Published: published, MinAuthRatio: 1, Amortization: amort()}
	for r := 0; r < cfg.Receivers; r++ {
		res := <-results[r]
		if res.err != nil {
			return nil, res.err
		}
		ratio := float64(res.authenticated) / float64(published)
		out.AuthRatio += ratio / float64(cfg.Receivers)
		if ratio < out.MinAuthRatio {
			out.MinAuthRatio = ratio
		}
		out.SubscriberDrops += subs[r].Drops()
	}
	return out, nil
}
