package netsim

import (
	"reflect"
	"sort"
	"testing"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/delay"
	"mcauth/internal/fault"
	"mcauth/internal/obs"
	"mcauth/internal/scheme"
	"mcauth/internal/scheme/augchain"
	"mcauth/internal/scheme/authtree"
	"mcauth/internal/scheme/emss"
	"mcauth/internal/scheme/rohatgi"
	"mcauth/internal/scheme/signeach"
	"mcauth/internal/scheme/tesla"
	"mcauth/internal/stats"
)

// chaosScheme pairs a scheme with the wiring netsim needs to drive it.
type chaosScheme struct {
	name     string
	s        scheme.Scheme
	reliable []uint32
	interval time.Duration
	start    time.Time
}

func chaosSchemes(t *testing.T) []chaosScheme {
	t.Helper()
	signer := crypto.NewSignerFromString("chaos")
	start := time.Unix(5000, 0)
	mk := func(s scheme.Scheme, err error) scheme.Scheme {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	teslaCfg := tesla.Config{
		N: 8, Lag: 2, Interval: 20 * time.Millisecond,
		Start: time.Unix(9000, 0), Seed: []byte("chaos"),
	}
	return []chaosScheme{
		{"rohatgi", mk(rohatgi.New(12, signer)), []uint32{1}, 10 * time.Millisecond, start},
		{"emss", mk(emss.New(emss.Config{N: 12, M: 2, D: 1}, signer)), []uint32{12}, 10 * time.Millisecond, start},
		{"augchain", mk(augchain.New(augchain.Config{N: 12, A: 3, B: 3}, signer)), []uint32{12}, 10 * time.Millisecond, start},
		{"authtree", mk(authtree.New(16, signer)), []uint32{1}, 10 * time.Millisecond, start},
		{"signeach", mk(signeach.New(8, signer)), nil, 10 * time.Millisecond, start},
		{"tesla", mk(tesla.New(teslaCfg, signer)), []uint32{1}, teslaCfg.Interval, teslaCfg.Start},
	}
}

// TestChaosSoak is the robustness gate: every scheme runs under every fault
// preset under several seeds and must degrade gracefully — no panic, no
// fatal error, zero forged packets authenticated, buffers bounded by the
// configured cap, and the netsim counters must agree with the trace events.
func TestChaosSoak(t *testing.T) {
	const (
		rate        = 0.03
		maxBuffered = 24
	)
	seeds := []uint64{1, 2, 3}
	presetTotals := make(map[string]FaultTotals)
	for _, cs := range chaosSchemes(t) {
		for _, preset := range fault.PresetNames() {
			fc, err := fault.Preset(preset, rate)
			if err != nil {
				t.Fatal(err)
			}
			for _, seed := range seeds {
				tracer := &obs.MemTracer{}
				reg := obs.NewRegistry()
				cfg := Config{
					Receivers:       8,
					Loss:            bern(t, 0.1),
					Delay:           delay.Constant{D: 5 * time.Millisecond},
					SendInterval:    cs.interval,
					Start:           cs.start,
					Seed:            seed,
					ReliableIndices: cs.reliable,
					SigRetransmits:  2,
					Faults:          &fc,
					MaxBuffered:     maxBuffered,
					Tracer:          tracer,
					Metrics:         reg,
				}
				res, err := Run(cs.s, cfg, 1, testPayloads(cs.s.BlockSize()))
				if err != nil {
					t.Fatalf("%s/%s seed %d: %v", cs.name, preset, seed, err)
				}
				ft := res.FaultTotals()
				agg := presetTotals[preset]
				agg.Corrupted += ft.Corrupted
				agg.Truncated += ft.Truncated
				agg.Duplicated += ft.Duplicated
				agg.ForgedInjected += ft.ForgedInjected
				agg.ForgedRejected += ft.ForgedRejected
				agg.ForgedAuthenticated += ft.ForgedAuthenticated
				agg.InvalidDeliveries += ft.InvalidDeliveries
				presetTotals[preset] = agg
				// Security invariant: nothing forged ever authenticates.
				if ft.ForgedAuthenticated != 0 {
					t.Errorf("%s/%s seed %d: %d forged packets authenticated",
						cs.name, preset, seed, ft.ForgedAuthenticated)
				}
				// Liveness: the adversary degrades but does not stop the
				// genuine stream.
				if res.TotalAuthenticated() == 0 {
					t.Errorf("%s/%s seed %d: nothing authenticated", cs.name, preset, seed)
				}
				// Bounded memory: no verifier buffered past the cap.
				if hw := res.MaxBufferHighWater(); hw > maxBuffered {
					t.Errorf("%s/%s seed %d: buffer high water %d > cap %d",
						cs.name, preset, seed, hw, maxBuffered)
				}
				checkTraceConsistency(t, cs.name, preset, tracer, reg, res, ft)
			}
		}
	}
	// Each preset's headline fault must actually have fired somewhere in
	// the soak, or the run proved nothing.
	for preset, want := range map[string]func(FaultTotals) int{
		"corruption":  func(ft FaultTotals) int { return ft.Corrupted },
		"truncation":  func(ft FaultTotals) int { return ft.Truncated },
		"duplication": func(ft FaultTotals) int { return ft.Duplicated },
		"forgery":     func(ft FaultTotals) int { return ft.ForgedInjected },
	} {
		if got := want(presetTotals[preset]); got == 0 {
			t.Errorf("preset %s never injected its fault across the soak", preset)
		}
	}
}

// TestForgedBeforeGenuineIsRejected pins down the rejection path the soak
// cannot force: the injector emits a forgery alongside its surviving genuine
// twin, so by the time the forgery arrives the genuine packet has usually
// authenticated and the verifier absorbs the forgery as a duplicate index
// (safe, but not a rejection). Delivered *before* the genuine packet, a
// forgery must be rejected outright — and must not poison the genuine
// packet's later authentication.
func TestForgedBeforeGenuineIsRejected(t *testing.T) {
	signer := crypto.NewSignerFromString("s")
	s, err := rohatgi.New(4, signer)
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := s.Authenticate(1, testPayloads(4))
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.NewVerifier()
	if err != nil {
		t.Fatal(err)
	}
	at := time.Unix(5000, 0)
	// The signature packet authenticates itself and yields the trusted
	// digest for index 2.
	if _, err := v.Ingest(pkts[0], at); err != nil {
		t.Fatal(err)
	}
	forger := fault.NewWrongKeyForger("attacker")
	forged := forger.Forge(stats.NewRNG(1), pkts[1])
	if forged == nil {
		t.Fatal("forger returned nil")
	}
	before := v.Stats()
	if _, err := v.Ingest(forged, at); err != nil {
		t.Fatal(err)
	}
	if got := v.Stats().Rejected - before.Rejected; got != 1 {
		t.Fatalf("forged-first ingest: rejected delta %d, want 1", got)
	}
	events, err := v.Ingest(pkts[1], at)
	if err != nil {
		t.Fatal(err)
	}
	authed := false
	for _, e := range events {
		if e.Index == pkts[1].Index && !fault.IsForgedPayload(e.Payload) {
			authed = true
		}
	}
	if !authed {
		t.Fatal("genuine packet failed to authenticate after its forgery was rejected")
	}
}

// checkTraceConsistency cross-checks the three books a run keeps: the
// per-receiver report counters, the metrics registry, and the trace events.
func checkTraceConsistency(t *testing.T, name, preset string, tracer *obs.MemTracer, reg *obs.Registry, res *Result, ft FaultTotals) {
	t.Helper()
	byType := make(map[obs.EventType]int)
	for _, e := range tracer.Events() {
		byType[e.Type]++
	}
	delivered := 0
	for i := range res.PerReceiver {
		delivered += res.PerReceiver[i].Delivered
	}
	checks := []struct {
		what    string
		events  int
		report  int
		counter int64
	}{
		{"delivered", byType[obs.EventDelivered], delivered, reg.Counter("netsim.delivered").Value()},
		{"corrupted+truncated", byType[obs.EventCorrupted], ft.Corrupted + ft.Truncated,
			reg.Counter("netsim.corrupted").Value() + reg.Counter("netsim.truncated").Value()},
		{"forged_injected", byType[obs.EventForgedInjected], ft.ForgedInjected, reg.Counter("netsim.forged_injected").Value()},
		{"forged_rejected", byType[obs.EventForgedRejected], ft.ForgedRejected, reg.Counter("netsim.forged_rejected").Value()},
	}
	for _, c := range checks {
		if c.events != c.report || int64(c.report) != c.counter {
			t.Errorf("%s/%s: %s books disagree: %d trace events, %d in report, %d in registry",
				name, preset, c.what, c.events, c.report, c.counter)
		}
	}
}

// TestChaosDeterministicBySeed pins the adversarial channel to the run
// seed: identical configuration must reproduce identical fault totals and
// outcomes.
func TestChaosDeterministicBySeed(t *testing.T) {
	fc, err := fault.Preset("forgery", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	fc.CorruptRate = 0.1
	fc.DuplicateRate = 0.1
	s, err := emss.New(emss.Config{N: 10, M: 2, D: 1}, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, 0.1, 6)
	cfg.ReliableIndices = []uint32{10}
	cfg.SigRetransmits = 2
	cfg.Faults = &fc
	run := func() (*Result, FaultTotals) {
		res, err := Run(s, cfg, 1, testPayloads(10))
		if err != nil {
			t.Fatal(err)
		}
		return res, res.FaultTotals()
	}
	resA, a := run()
	resB, b := run()
	if a != b {
		t.Fatalf("fault totals diverge across identical runs: %+v vs %+v", a, b)
	}
	if a.Corrupted == 0 || a.Duplicated == 0 || a.ForgedInjected == 0 {
		t.Fatalf("expected all fault kinds to fire, got %+v", a)
	}
	if resA.TotalAuthenticated() != resB.TotalAuthenticated() {
		t.Fatal("authentication outcomes diverge across identical runs")
	}
}

// TestFaultsDisabledMatchesBaseline is the regression guard for the "off
// means off" contract: a nil Faults config must not perturb a run in any
// observable way — same reports, same trace — as the same config with the
// fault layer never constructed.
func TestFaultsDisabledMatchesBaseline(t *testing.T) {
	s, err := rohatgi.New(8, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	run := func(faults *fault.Config) (*Result, []obs.Event) {
		tracer := &obs.MemTracer{}
		cfg := baseConfig(t, 0.2, 8)
		cfg.ReliableIndices = []uint32{1}
		cfg.Faults = faults
		cfg.Tracer = tracer
		res, err := Run(s, cfg, 1, testPayloads(8))
		if err != nil {
			t.Fatal(err)
		}
		// Receiver goroutines interleave their emissions arbitrarily; the
		// per-receiver event streams are the deterministic artifact, so
		// canonicalize by grouping on receiver (stable: preserves each
		// receiver's own order) before comparing.
		ev := tracer.Events()
		sort.SliceStable(ev, func(i, j int) bool { return ev[i].Receiver < ev[j].Receiver })
		return res, ev
	}
	resNil, evNil := run(nil)
	// A non-nil but all-zero config is "not enabled" and must behave
	// identically to nil.
	resZero, evZero := run(&fault.Config{})
	if !reflect.DeepEqual(resNil, resZero) {
		t.Error("zero-valued fault config changed run results")
	}
	if !reflect.DeepEqual(evNil, evZero) {
		t.Error("zero-valued fault config changed the trace")
	}
}

// TestSigRetransmitsReplaceReliability checks the recovery mechanism: with
// retransmission enabled the reliable-delivery magic is off (the signature
// packet can genuinely be lost), the wire carries the extra copies, and
// under moderate loss the copies keep the authentication rate high.
func TestSigRetransmitsReplaceReliability(t *testing.T) {
	s, err := rohatgi.New(8, crypto.NewSignerFromString("s"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, 0.3, 300)
	cfg.ReliableIndices = []uint32{1}
	cfg.SigRetransmits = 3
	res, err := Run(s, cfg, 1, testPayloads(8))
	if err != nil {
		t.Fatal(err)
	}
	if want := 8 + 3; res.WireCount != want {
		t.Fatalf("wire count %d, want %d (block + 3 signature copies)", res.WireCount, want)
	}
	// With p=0.3 and 4 total copies, a receiver misses the signature with
	// probability 0.3^4 ≈ 0.8%; some receivers in 300 should still lose it
	// (proving the magic is off) but the vast majority authenticate.
	sigLost, authed := 0, 0
	for i := range res.PerReceiver {
		rep := &res.PerReceiver[i]
		if !rep.Received(1) {
			sigLost++
		}
		if rep.Stats.Authenticated > 0 {
			authed++
		}
	}
	if sigLost == 0 {
		t.Error("no receiver ever lost the signature: reliability magic still on")
	}
	if ratio := float64(authed) / float64(len(res.PerReceiver)); ratio < 0.9 {
		t.Errorf("only %.0f%% of receivers authenticated anything; retransmits not recovering", 100*ratio)
	}
	// Duplicate signature copies are absorbed as duplicates, not errors.
	dups := 0
	for i := range res.PerReceiver {
		dups += res.PerReceiver[i].Stats.Duplicates
	}
	if dups == 0 {
		t.Error("retransmitted signatures produced no duplicate ingests")
	}
}

// TestChaosValidation covers the new Config fields' bounds.
func TestChaosValidation(t *testing.T) {
	good := baseConfig(t, 0.1, 2)
	bad := []func(Config) Config{
		func(c Config) Config { c.SigRetransmits = -1; return c },
		func(c Config) Config { c.SigRetransmits = maxSigRetransmits + 1; return c },
		func(c Config) Config { c.MaxBuffered = -1; return c },
		func(c Config) Config { c.Faults = &fault.Config{CorruptRate: 1.5}; return c },
	}
	for i, mutate := range bad {
		if err := mutate(good).Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	okCfg := good
	okCfg.SigRetransmits = 2
	okCfg.MaxBuffered = 16
	fc, err := fault.Preset("corruption", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	okCfg.Faults = &fc
	if err := okCfg.Validate(); err != nil {
		t.Errorf("valid chaos config rejected: %v", err)
	}
}
