package server

import (
	"fmt"
	"sync/atomic"

	"mcauth/internal/obs"
	"mcauth/internal/stream"
	"mcauth/internal/transport"
)

// Stream is one authenticated stream's server-side state. All sender
// mutation happens on the stream's shard goroutine (or on the Close
// drain, after the shards have exited), so the stream.Sender needs no
// lock; the counters are atomic because readers snapshot them from
// other goroutines.
type Stream struct {
	srv *Server
	id  uint64
	snd *stream.Sender
	// tokens bounds in-flight publishes: Publish acquires before
	// dispatching to the shard, the shard task releases when done.
	tokens chan struct{}

	published atomic.Int64
	blocks    atomic.Int64
	errors    atomic.Int64

	// reserved caches the stream's durably checkpointed block-ID watermark
	// (shard goroutine / Close drain only — same single-threaded discipline
	// as snd). Blocks below it may be emitted without touching the
	// checkpoint; reaching it forces a new write-ahead reservation.
	reserved uint64

	// repair retains recently emitted packets for session-resume catch-up
	// (nil when Config.RepairBlocks is 0).
	repair *transport.RepairStore

	// m holds the stream's registry instruments (per-stream throughput in
	// /metrics); nil-safe when the server has no registry.
	m streamMetrics
}

type streamMetrics struct {
	published *obs.Counter
	blocks    *obs.Counter
}

func newStream(srv *Server, id uint64, snd *stream.Sender) *Stream {
	return &Stream{
		srv:    srv,
		id:     id,
		snd:    snd,
		tokens: make(chan struct{}, srv.cfg.MaxPendingPublish),
		m: streamMetrics{
			published: srv.cfg.Metrics.Counter(fmt.Sprintf("server.stream.%d.published", id)),
			blocks:    srv.cfg.Metrics.Counter(fmt.Sprintf("server.stream.%d.blocks", id)),
		},
	}
}

// ID returns the stream's wire identifier.
func (st *Stream) ID() uint64 { return st.id }

// Published returns how many messages have been accepted for the stream.
func (st *Stream) Published() int64 { return st.published.Load() }

// Blocks returns how many blocks the stream has emitted.
func (st *Stream) Blocks() int64 { return st.blocks.Load() }

// Errors returns how many internal scheme/signer failures the stream has
// absorbed (each loses one block; they indicate misconfiguration).
func (st *Stream) Errors() int64 { return st.errors.Load() }

// process appends one message, emitting the block it completes. Shard
// goroutine only.
func (st *Stream) process(payload []byte) {
	db, err := st.snd.PushDeferredAt(payload, st.srv.cfg.Clock())
	if err != nil {
		st.errors.Add(1)
		return
	}
	st.emit(db)
}

// flushPartial pads out and emits a partially filled block (deadline
// flush, stream close, or server drain). Shard goroutine or Close drain.
func (st *Stream) flushPartial() {
	db, err := st.snd.FlushDeferred()
	if err != nil {
		st.errors.Add(1)
		return
	}
	st.emit(db)
}

// ensureReserved write-ahead reserves block IDs through the checkpoint
// before blockID becomes externally visible: nothing is emitted under an
// ID the checkpoint has not durably reserved, so a restart (which resumes
// at the watermark) can never fork a block. Reserving a chunk at a time
// amortizes the fsync over ReserveChunk blocks. Shard goroutine / Close
// drain only.
func (st *Stream) ensureReserved(blockID uint64) bool {
	cp := st.srv.cfg.Checkpoint
	if cp == nil || blockID < st.reserved {
		return true
	}
	through := blockID + uint64(st.srv.cfg.ReserveChunk)
	if err := cp.reserve(st.id, through); err != nil {
		return false
	}
	st.reserved = through
	return true
}

// emit delivers a freshly authenticated block: immediate packets fan out
// now, the root goes to the batch signer and its packets follow once the
// signature lands. A nil block (nothing emitted) is a no-op. A block whose
// ID cannot be durably reserved is dropped whole — losing a block is
// recoverable (receivers treat it as wholly lost), emitting an unreserved
// one could fork identities after a crash.
func (st *Stream) emit(db *stream.DeferredBlock) {
	if db == nil {
		return
	}
	if !st.ensureReserved(db.BlockID) {
		st.errors.Add(1)
		return
	}
	st.blocks.Add(1)
	st.srv.m.blocks.Inc()
	st.m.blocks.Inc()
	if spans := st.srv.cfg.Spans; spans.Enabled() {
		spans.Record(obs.Span{
			Kind:   obs.SpanShardEnqueue,
			Stream: st.id,
			Block:  db.BlockID,
			TimeNS: st.srv.cfg.Clock().UnixNano(),
		})
	}
	if st.repair != nil {
		st.repair.Add(db.BlockID, db.Immediate)
	}
	for _, p := range db.Immediate {
		st.srv.deliver(st.id, p)
	}
	if db.Root != nil {
		st.srv.enqueueRoot(st, db)
	}
}
