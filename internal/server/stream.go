package server

import (
	"fmt"
	"sync/atomic"

	"mcauth/internal/obs"
	"mcauth/internal/stream"
)

// Stream is one authenticated stream's server-side state. All sender
// mutation happens on the stream's shard goroutine (or on the Close
// drain, after the shards have exited), so the stream.Sender needs no
// lock; the counters are atomic because readers snapshot them from
// other goroutines.
type Stream struct {
	srv *Server
	id  uint64
	snd *stream.Sender
	// tokens bounds in-flight publishes: Publish acquires before
	// dispatching to the shard, the shard task releases when done.
	tokens chan struct{}

	published atomic.Int64
	blocks    atomic.Int64
	errors    atomic.Int64

	// m holds the stream's registry instruments (per-stream throughput in
	// /metrics); nil-safe when the server has no registry.
	m streamMetrics
}

type streamMetrics struct {
	published *obs.Counter
	blocks    *obs.Counter
}

func newStream(srv *Server, id uint64, snd *stream.Sender) *Stream {
	return &Stream{
		srv:    srv,
		id:     id,
		snd:    snd,
		tokens: make(chan struct{}, srv.cfg.MaxPendingPublish),
		m: streamMetrics{
			published: srv.cfg.Metrics.Counter(fmt.Sprintf("server.stream.%d.published", id)),
			blocks:    srv.cfg.Metrics.Counter(fmt.Sprintf("server.stream.%d.blocks", id)),
		},
	}
}

// ID returns the stream's wire identifier.
func (st *Stream) ID() uint64 { return st.id }

// Published returns how many messages have been accepted for the stream.
func (st *Stream) Published() int64 { return st.published.Load() }

// Blocks returns how many blocks the stream has emitted.
func (st *Stream) Blocks() int64 { return st.blocks.Load() }

// Errors returns how many internal scheme/signer failures the stream has
// absorbed (each loses one block; they indicate misconfiguration).
func (st *Stream) Errors() int64 { return st.errors.Load() }

// process appends one message, emitting the block it completes. Shard
// goroutine only.
func (st *Stream) process(payload []byte) {
	db, err := st.snd.PushDeferredAt(payload, st.srv.cfg.Clock())
	if err != nil {
		st.errors.Add(1)
		return
	}
	st.emit(db)
}

// flushPartial pads out and emits a partially filled block (deadline
// flush, stream close, or server drain). Shard goroutine or Close drain.
func (st *Stream) flushPartial() {
	db, err := st.snd.FlushDeferred()
	if err != nil {
		st.errors.Add(1)
		return
	}
	st.emit(db)
}

// emit delivers a freshly authenticated block: immediate packets fan out
// now, the root goes to the batch signer and its packets follow once the
// signature lands. A nil block (nothing emitted) is a no-op.
func (st *Stream) emit(db *stream.DeferredBlock) {
	if db == nil {
		return
	}
	st.blocks.Add(1)
	st.srv.m.blocks.Inc()
	st.m.blocks.Inc()
	for _, p := range db.Immediate {
		st.srv.deliver(st.id, p)
	}
	if db.Root != nil {
		st.srv.enqueueRoot(st, db)
	}
}
