package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Checkpoint is the serving tier's crash-recovery log: a small file
// recording, per stream, a *reserved* block-ID watermark strictly above
// every block the daemon may ever have emitted. Reservation is
// write-ahead — a stream durably reserves a chunk of block IDs *before*
// emitting into it — so a daemon killed at any instant and restarted from
// the same checkpoint resumes each stream at its watermark and can never
// emit two different blocks under one (stream, block) identity. In-flight
// verifiers therefore see blocks terminate cleanly (a killed partial block
// simply never completes; its ID is abandoned), never fork.
//
// A graceful shutdown tightens the watermarks to the exact next block IDs
// and marks the checkpoint clean, so a clean restart leaves no ID gap. A
// crash leaves a gap of at most one reservation chunk per stream — block
// IDs jump forward, which receivers treat like any other wholly-lost
// blocks.
type Checkpoint struct {
	path string

	mu       sync.Mutex
	reserved map[uint64]uint64 // stream ID -> first unreserved block ID
	clean    bool
}

// checkpointState is the JSON file layout.
type checkpointState struct {
	// Streams maps stream ID to its reserved watermark: every block the
	// process may have emitted has a strictly smaller ID.
	Streams map[uint64]uint64 `json:"streams"`
	// Clean records whether the last shutdown drained and flushed
	// everything (watermarks are then exact next-block IDs).
	Clean bool `json:"clean"`
}

// OpenCheckpoint loads (or initializes) the checkpoint file at path. A
// missing file starts empty; a present one must parse, since silently
// ignoring a corrupt checkpoint could fork block IDs.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	cp := &Checkpoint{path: path, reserved: make(map[uint64]uint64)}
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return cp, nil
	}
	if err != nil {
		return nil, fmt.Errorf("server: checkpoint %s: %w", path, err)
	}
	var st checkpointState
	if err := json.Unmarshal(b, &st); err != nil {
		return nil, fmt.Errorf("server: checkpoint %s: %w", path, err)
	}
	if st.Streams != nil {
		cp.reserved = st.Streams
	}
	cp.clean = st.Clean
	return cp, nil
}

// Path returns the checkpoint's file path.
func (cp *Checkpoint) Path() string { return cp.path }

// Clean reports whether the checkpoint was written by a graceful shutdown
// (true) or left behind by a crash (false once any reservation lands).
func (cp *Checkpoint) Clean() bool {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.clean
}

// StartBlock returns where a restored stream must begin: its reserved
// watermark, or 0 for streams the checkpoint has never seen.
func (cp *Checkpoint) StartBlock(streamID uint64) uint64 {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.reserved[streamID]
}

// Streams lists the stream IDs the checkpoint knows (unordered).
func (cp *Checkpoint) Streams() []uint64 {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	out := make([]uint64, 0, len(cp.reserved))
	for id := range cp.reserved {
		out = append(out, id)
	}
	return out
}

// reserve durably raises the stream's watermark to at least through,
// returning only after the file is synced — the write-ahead step emit
// depends on. Raising also clears the clean flag: the process is live
// again.
func (cp *Checkpoint) reserve(streamID, through uint64) error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.reserved[streamID] >= through && !cp.clean {
		return nil
	}
	if cp.reserved[streamID] < through {
		cp.reserved[streamID] = through
	}
	cp.clean = false
	return cp.writeLocked()
}

// markClean records the exact next block IDs at the end of a graceful
// drain, so a clean restart resumes without any ID gap.
func (cp *Checkpoint) markClean(next map[uint64]uint64) error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	for id, n := range next {
		// A clean drain emitted everything: the exact next ID supersedes
		// any wider crash-safety reservation.
		cp.reserved[id] = n
	}
	cp.clean = true
	return cp.writeLocked()
}

// writeLocked persists the state atomically: temp file in the same
// directory, fsync, rename. Callers hold cp.mu.
func (cp *Checkpoint) writeLocked() error {
	st := checkpointState{Streams: cp.reserved, Clean: cp.clean}
	b, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("server: checkpoint: %w", err)
	}
	dir := filepath.Dir(cp.path)
	f, err := os.CreateTemp(dir, ".checkpoint-*")
	if err != nil {
		return fmt.Errorf("server: checkpoint: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(b); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, cp.path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: checkpoint %s: %w", cp.path, err)
	}
	return nil
}
