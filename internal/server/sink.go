package server

import (
	"sync/atomic"

	"mcauth/internal/packet"
)

// Delivery is one wire packet handed to a subscriber, tagged with its
// stream (matching the transport mux framing).
type Delivery struct {
	StreamID uint64
	Packet   *packet.Packet
}

// Subscriber is one receiver-facing feed: a bounded queue of deliveries.
// A subscriber that falls MaxSubscriberQueue packets behind loses the
// overflow (counted in Drops) — exactly the best-effort loss the schemes
// are built to tolerate, and the property that makes slow consumers
// unable to stall the serving path.
type Subscriber struct {
	ch    chan Delivery
	drops atomic.Int64
	// filter restricts the feed to these stream IDs; nil means all.
	filter map[uint64]bool
}

// C is the delivery channel; it closes when the server shuts down or the
// subscriber is unsubscribed.
func (sub *Subscriber) C() <-chan Delivery { return sub.ch }

// Drops returns how many packets the subscriber has lost to backpressure.
func (sub *Subscriber) Drops() int64 { return sub.drops.Load() }

// Subscribe registers a feed of every packet the server emits; passing
// stream IDs restricts it to those streams. Subscribers added mid-stream
// see packets from the next block boundary on — the late-join story the
// block structure exists for.
func (s *Server) Subscribe(streamIDs ...uint64) (*Subscriber, error) {
	sub := &Subscriber{ch: make(chan Delivery, s.cfg.MaxSubscriberQueue)}
	if len(streamIDs) > 0 {
		sub.filter = make(map[uint64]bool, len(streamIDs))
		for _, id := range streamIDs {
			sub.filter[id] = true
		}
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.subs == nil {
		return nil, ErrClosed
	}
	s.subs[sub] = struct{}{}
	return sub, nil
}

// Unsubscribe removes the feed and closes its channel; a no-op for
// already-removed subscribers.
func (s *Server) Unsubscribe(sub *Subscriber) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.subs == nil {
		return
	}
	if _, ok := s.subs[sub]; ok {
		delete(s.subs, sub)
		close(sub.ch)
	}
}

// sigClass reports whether a packet carries authentication material whose
// loss can cost a whole block (a signature or a TESLA key disclosure), as
// opposed to one message. Shedding policy keys off this split.
func sigClass(p *packet.Packet) bool {
	return len(p.Signature) > 0 || len(p.DisclosedKey) > 0
}

// deliver fans one packet out to every interested subscriber without ever
// blocking: full queues drop and count. Shedding is priority-aware — the
// last SigQueueReserve slots of each queue are reserved for
// signature-class packets, because one lost data packet loses one message
// while one lost root packet collapses the block's q_min (the
// loss-amortization argument batch signing rests on). Per-class drops land
// in server.shed_data / server.shed_sig.
func (s *Server) deliver(streamID uint64, p *packet.Packet) {
	sig := sigClass(p)
	s.subMu.RLock()
	defer s.subMu.RUnlock()
	for sub := range s.subs {
		if sub.filter != nil && !sub.filter[streamID] {
			continue
		}
		if !sig && len(sub.ch) >= cap(sub.ch)-s.cfg.SigQueueReserve {
			// Queue has backed up into the reserved tail: shed data now so
			// the signature packets behind it still fit.
			sub.drops.Add(1)
			s.m.packetsDropped.Inc()
			s.m.shedData.Inc()
			continue
		}
		select {
		case sub.ch <- Delivery{StreamID: streamID, Packet: p}:
			s.m.packetsDelivered.Inc()
		default:
			sub.drops.Add(1)
			s.m.packetsDropped.Inc()
			if sig {
				s.m.shedSig.Inc()
			} else {
				s.m.shedData.Inc()
			}
		}
	}
}
