// Package server is the concurrent serving path: a long-running daemon
// multiplexing many independent authenticated streams. Each stream owns a
// stream.Sender; streams are sharded across a bounded worker pool so block
// construction parallelizes across streams while staying strictly ordered
// within one (everything for a stream runs on its shard goroutine). Block
// root signatures are amortized through one crypto.BatchSigner — up to
// BatchSize roots per underlying signature — with a flush deadline so a
// withheld signature packet never waits longer than roughly one
// FlushInterval beyond the scheme's own dependence-graph delay bound.
// Receivers subscribe through bounded queues with drop-and-count
// semantics: under backpressure the server degrades exactly like the
// best-effort multicast network the paper models, and can never deadlock
// behind a slow consumer.
package server

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/obs"
	"mcauth/internal/packet"
	"mcauth/internal/scheme"
	"mcauth/internal/stream"
	"mcauth/internal/transport"
)

var (
	// ErrClosed is returned once Close has begun.
	ErrClosed = errors.New("server: closed")
	// ErrUnknownStream is returned for operations on streams never opened
	// (or already closed).
	ErrUnknownStream = errors.New("server: unknown stream")
	// ErrStreamExists is returned when opening an already-open stream ID.
	ErrStreamExists = errors.New("server: stream exists")
)

// Config parameterizes a Server. The zero value of every field except
// Signer is usable; defaults are applied by New.
type Config struct {
	// Signer is the daemon's signing key (required). Schemes opened on the
	// server are built from its batch-capable wrapping, so their verifiers
	// accept both plain and batched signatures.
	Signer crypto.Signer
	// Shards is the worker-pool width; streams hash onto shards. Default:
	// min(8, GOMAXPROCS).
	Shards int
	// BatchSize is the auto-flush threshold of the batch signer (how many
	// block roots one signature may cover). Default 64.
	BatchSize int
	// FlushInterval bounds how long a partial block or an unsigned batch
	// may sit pending. Default 50ms.
	FlushInterval time.Duration
	// MaxPendingPublish bounds each stream's in-flight publishes; Publish
	// blocks (backpressure) when the stream is that far behind. Default 256.
	MaxPendingPublish int
	// MaxSubscriberQueue bounds each subscriber's delivery queue; overflow
	// is dropped and counted, never blocked on. Default 1024.
	MaxSubscriberQueue int
	// Metrics receives server.* instruments (nil disables).
	Metrics *obs.Registry
	// Spans, when non-nil, receives causal lifecycle spans for every
	// stream the server opens: the sender-side push/shard_enqueue/
	// sign_attach half of the end-to-end trace (receivers record the
	// other half into their own ring; the two join on the deterministic
	// obs.TraceID). Nil disables span recording.
	Spans *obs.SpanRing
	// Clock defaults to time.Now; tests inject virtual time.
	Clock func() time.Time
	// Checkpoint enables crash recovery: streams write-ahead reserve block
	// IDs through it before emitting, restored streams resume at their
	// reserved watermark, and Close records exact positions. Nil disables.
	Checkpoint *Checkpoint
	// ReserveChunk is how many block IDs one checkpoint write reserves —
	// the trade between checkpoint write rate (one fsync per chunk of
	// blocks) and the ID gap a crash leaves. Default 64.
	ReserveChunk int
	// RepairBlocks, when positive, keeps each stream's last RepairBlocks
	// blocks of emitted packets in a RepairStore so reconnecting
	// subscribers can be caught up via ResumeFrom. 0 disables retention.
	RepairBlocks int
	// SigQueueReserve is the tail of each subscriber queue reserved for
	// signature-class packets (signature or key disclosure present). Under
	// backpressure data packets shed first: one lost data packet loses one
	// message, one lost root packet can collapse the whole block's
	// authentication. Default MaxSubscriberQueue/8, minimum 1.
	SigQueueReserve int
}

func (c Config) withDefaults() (Config, error) {
	if c.Signer == nil {
		return c, errors.New("server: nil signer")
	}
	if c.Shards <= 0 {
		c.Shards = min(8, runtime.GOMAXPROCS(0))
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.BatchSize > crypto.MaxBatch {
		return c, fmt.Errorf("server: batch size %d exceeds %d", c.BatchSize, crypto.MaxBatch)
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 50 * time.Millisecond
	}
	if c.MaxPendingPublish <= 0 {
		c.MaxPendingPublish = 256
	}
	if c.MaxSubscriberQueue <= 0 {
		c.MaxSubscriberQueue = 1024
	}
	if c.ReserveChunk <= 0 {
		c.ReserveChunk = 64
	}
	if c.RepairBlocks < 0 {
		return c, fmt.Errorf("server: repair blocks %d must be >= 0", c.RepairBlocks)
	}
	if c.SigQueueReserve <= 0 {
		c.SigQueueReserve = max(1, c.MaxSubscriberQueue/8)
	}
	// The reserve is a tail of the queue, so it must leave at least one
	// data slot; a one-slot queue degenerates to no reservation.
	c.SigQueueReserve = min(c.SigQueueReserve, c.MaxSubscriberQueue-1)
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c, nil
}

// metrics caches the server.* instruments; all fields are nil-safe.
type metrics struct {
	streams            *obs.Gauge
	published          *obs.Counter
	blocks             *obs.Counter
	packetsDelivered   *obs.Counter
	packetsDropped     *obs.Counter
	batchFlushFull     *obs.Counter
	batchFlushDeadline *obs.Counter
	batchFlushDrain    *obs.Counter
	batchFill          *obs.Histogram
	rootHold           *obs.Histogram
	// batchSignatures / batchSignedRoots mirror the batch signer's
	// lifetime totals into /metrics; their quotient is the signature
	// amortization ratio.
	batchSignatures  *obs.Gauge
	batchSignedRoots *obs.Gauge
	// shedData / shedSig split the backpressure drops by packet class; a
	// healthy shedding policy keeps shedSig near zero while shedData grows.
	shedData *obs.Counter
	shedSig  *obs.Counter
	// resumeCatchup counts packets replayed to reconnecting subscribers.
	resumeCatchup *obs.Counter
}

func newMetrics(reg *obs.Registry) metrics {
	return metrics{
		streams:            reg.Gauge("server.streams"),
		published:          reg.Counter("server.published"),
		blocks:             reg.Counter("server.blocks"),
		packetsDelivered:   reg.Counter("server.packets_delivered"),
		packetsDropped:     reg.Counter("server.packets_dropped_backpressure"),
		batchFlushFull:     reg.Counter("server.batch_flush_full"),
		batchFlushDeadline: reg.Counter("server.batch_flush_deadline"),
		batchFlushDrain:    reg.Counter("server.batch_flush_drain"),
		batchFill:          reg.Histogram("server.batch_fill"),
		rootHold:           reg.Histogram("server.root_hold_ns"),
		batchSignatures:    reg.Gauge("server.batch_signatures"),
		batchSignedRoots:   reg.Gauge("server.batch_signed_roots"),
		shedData:           reg.Counter("server.shed_data"),
		shedSig:            reg.Counter("server.shed_sig"),
		resumeCatchup:      reg.Counter("server.resume_catchup_packets"),
	}
}

// Server multiplexes authenticated streams over a sharded worker pool
// with batched signing. Create with New, stop with Close.
type Server struct {
	cfg    Config
	signer *crypto.BatchSigner
	shards []*shard
	m      metrics

	mu      sync.Mutex
	streams map[uint64]*Stream
	closed  bool
	// closing is closed at the start of Close so publishers blocked on
	// backpressure abort instead of deadlocking the drain.
	closing chan struct{}
	// pubWG counts in-flight Publish calls; Close waits for them before
	// draining the shards.
	pubWG sync.WaitGroup

	subMu sync.RWMutex
	subs  map[*Subscriber]struct{}

	flusherStop chan struct{}
	flusherDone chan struct{}
}

// New starts a server (its shard workers and flusher run until Close).
func New(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	bs, err := crypto.NewBatchSigner(cfg.Signer, cfg.BatchSize)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:         cfg,
		signer:      bs,
		m:           newMetrics(cfg.Metrics),
		streams:     make(map[uint64]*Stream),
		closing:     make(chan struct{}),
		subs:        make(map[*Subscriber]struct{}),
		flusherStop: make(chan struct{}),
		flusherDone: make(chan struct{}),
	}
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = newShard(cfg.Shards * cfg.MaxPendingPublish)
	}
	go s.flusher()
	return s, nil
}

// SchemeSigner returns the batch-aware signing key stream schemes must be
// built from (OpenStream passes it to the scheme factory).
func (s *Server) SchemeSigner() crypto.Signer { return crypto.BatchCapable(s.cfg.Signer) }

// OpenStream creates stream id. The factory receives the server's
// batch-aware signer and must construct the stream's scheme from it, so
// the scheme's verifiers accept batched signatures.
func (s *Server) OpenStream(id uint64, build func(signer crypto.Signer) (scheme.Scheme, error)) error {
	if build == nil {
		return errors.New("server: nil scheme factory")
	}
	sch, err := build(s.SchemeSigner())
	if err != nil {
		return fmt.Errorf("server: stream %d: %w", id, err)
	}
	// With a checkpoint, the stream restarts at its reserved watermark:
	// strictly above every block any earlier incarnation may have emitted,
	// so restarted streams can never fork a block ID.
	var start uint64
	if s.cfg.Checkpoint != nil {
		start = s.cfg.Checkpoint.StartBlock(id)
	}
	snd, err := stream.NewSender(sch, start)
	if err != nil {
		return fmt.Errorf("server: stream %d: %w", id, err)
	}
	snd.SetFlushAfter(s.cfg.FlushInterval)
	snd.SetSpans(s.cfg.Spans, id)
	st := newStream(s, id, snd)
	st.reserved = start
	if s.cfg.RepairBlocks > 0 {
		if st.repair, err = transport.NewRepairStore(s.cfg.RepairBlocks); err != nil {
			return fmt.Errorf("server: stream %d: %w", id, err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.streams[id]; ok {
		return ErrStreamExists
	}
	s.streams[id] = st
	s.m.streams.Set(int64(len(s.streams)))
	return nil
}

// CloseStream removes stream id, flushing its partial block (padded, per
// stream.Sender.Flush semantics) through its shard so in-flight publishes
// ahead of it still land first.
func (s *Server) CloseStream(id uint64) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	st, ok := s.streams[id]
	if !ok {
		s.mu.Unlock()
		return ErrUnknownStream
	}
	delete(s.streams, id)
	s.m.streams.Set(int64(len(s.streams)))
	// Joining pubWG under the same lock that checked closed keeps the
	// dispatch below ordered before Close's shard-channel close — without
	// it, CloseStream racing Close could send on a closed task channel.
	s.pubWG.Add(1)
	s.mu.Unlock()
	defer s.pubWG.Done()
	// Ordered behind the stream's pending publish tasks; if the server is
	// racing into Close, the drain pass flushes instead.
	s.dispatch(st, func() { st.flushPartial() })
	return nil
}

// Publish appends one message to stream id. When the stream has
// MaxPendingPublish publishes in flight, Publish blocks (per-stream
// backpressure) until the shard catches up or the server closes.
func (s *Server) Publish(id uint64, payload []byte) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	st, ok := s.streams[id]
	if !ok {
		s.mu.Unlock()
		return ErrUnknownStream
	}
	s.pubWG.Add(1)
	s.mu.Unlock()
	defer s.pubWG.Done()

	select {
	case st.tokens <- struct{}{}:
	case <-s.closing:
		return ErrClosed
	}
	if !s.dispatch(st, func() {
		defer func() { <-st.tokens }()
		st.process(payload)
	}) {
		<-st.tokens
		return ErrClosed
	}
	s.m.published.Inc()
	st.published.Add(1)
	st.m.published.Inc()
	return nil
}

// dispatch queues fn on the stream's shard, reporting false if the server
// closed instead. Per-stream ordering holds because a stream always maps
// to the same shard.
func (s *Server) dispatch(st *Stream, fn func()) bool {
	sh := s.shards[int(st.id%uint64(len(s.shards)))]
	select {
	case sh.tasks <- fn:
		return true
	case <-s.closing:
		return false
	}
}

// tryDispatch is dispatch without blocking; the flusher uses it so a full
// shard queue delays a deadline flush to the next tick rather than
// stalling the flusher.
func (s *Server) tryDispatch(st *Stream, fn func()) bool {
	sh := s.shards[int(st.id%uint64(len(s.shards)))]
	select {
	case sh.tasks <- fn:
		return true
	default:
		return false
	}
}

// flusher enforces the two deadlines: partial blocks older than
// FlushInterval are padded out, and pending batch roots are signed. Worst
// case a root is held for one tick past its deadline (tick == deadline),
// so receiver-visible signature delay is bounded by 2×FlushInterval on
// top of the scheme's own dependence-graph delay.
func (s *Server) flusher() {
	defer close(s.flusherDone)
	t := time.NewTicker(s.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-s.flusherStop:
			return
		case <-t.C:
		}
		now := s.cfg.Clock()
		s.mu.Lock()
		due := make([]*Stream, 0)
		for _, st := range s.streams {
			due = append(due, st)
		}
		s.mu.Unlock()
		for _, st := range due {
			st := st
			s.tryDispatch(st, func() {
				if st.snd.Due(now) {
					st.flushPartial()
				}
			})
		}
		if s.signer.Pending() > 0 {
			if n, err := s.signer.Flush(); err == nil && n > 0 {
				s.m.batchFlushDeadline.Inc()
				s.m.batchFill.Observe(int64(n))
				s.noteBatchTotals()
			}
		}
	}
}

// enqueueRoot hands a pending block root to the batch signer; the deliver
// callback attaches the signature and releases the held packets. Called
// from shard goroutines (and the Close drain), so an auto-flush triggered
// here delivers for every stream that contributed to the batch.
func (s *Server) enqueueRoot(st *Stream, db *stream.DeferredBlock) {
	t0 := s.cfg.Clock()
	pending, err := s.signer.Enqueue(db.Root.Content, func(sig []byte) {
		db.Root.Attach(sig)
		hold := s.cfg.Clock().Sub(t0)
		s.m.rootHold.Observe(hold.Nanoseconds())
		if s.cfg.Spans.Enabled() {
			s.cfg.Spans.Record(obs.Span{
				Kind:   obs.SpanSignAttach,
				Stream: st.id,
				Block:  db.BlockID,
				TimeNS: s.cfg.Clock().UnixNano(),
				DurNS:  hold.Nanoseconds(),
			})
		}
		// Retain for resume only now that the signature is attached: a
		// replayed root packet without its signature would be useless, and
		// storing earlier would race Attach against a concurrent ResumeFrom.
		if st.repair != nil {
			st.repair.Add(db.BlockID, db.Held)
		}
		for _, p := range db.Held {
			s.deliver(st.id, p)
		}
	})
	if err != nil {
		// Only reachable via signer misuse (validated sizes); surface on
		// the stream's error counter rather than crashing the shard.
		st.errors.Add(1)
		return
	}
	if pending == 0 {
		s.m.batchFlushFull.Inc()
		s.m.batchFill.Observe(int64(s.signer.MaxBatchSize()))
		s.noteBatchTotals()
	}
}

// noteBatchTotals mirrors the signer's lifetime totals into the gauges
// after each flush, so /metrics carries the amortization ratio.
func (s *Server) noteBatchTotals() {
	tot := s.signer.Totals()
	s.m.batchSignatures.Set(tot.Signatures)
	s.m.batchSignedRoots.Set(tot.SignedRoots)
}

// Streams lists the open stream IDs (unordered).
func (s *Server) Streams() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, 0, len(s.streams))
	for id := range s.streams {
		out = append(out, id)
	}
	return out
}

// Stream returns the live stream's handle (nil when unknown).
func (s *Server) Stream(id uint64) *Stream {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.streams[id]
}

// BatchTotals snapshots the batch signer's lifetime counters; the
// amortization ratio is Totals().AmortizationRatio().
func (s *Server) BatchTotals() crypto.BatchTotals { return s.signer.Totals() }

// ResumeFrom returns every retained packet of stream id with block ID >=
// from (the session-resume catch-up replay), counting the replay in
// server.resume_catchup_packets. Nil when the stream is unknown or
// retention is disabled (RepairBlocks == 0). The packets are shared with
// the repair store; callers must not mutate them.
func (s *Server) ResumeFrom(id uint64, from uint64) []*packet.Packet {
	s.mu.Lock()
	st := s.streams[id]
	s.mu.Unlock()
	if st == nil || st.repair == nil {
		return nil
	}
	pkts := st.repair.Since(from)
	s.m.resumeCatchup.Add(int64(len(pkts)))
	return pkts
}

// stop runs the shutdown steps Close and Kill share: mark closed, stop
// the flusher, wait out in-flight publishes, and drain the shard workers.
// Returns the surviving streams (now exclusively owned by the caller) and
// false if the server was already stopped.
func (s *Server) stop() ([]*Stream, bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false
	}
	s.closed = true
	close(s.closing)
	s.mu.Unlock()

	close(s.flusherStop)
	<-s.flusherDone
	s.pubWG.Wait()
	for _, sh := range s.shards {
		close(sh.tasks)
	}
	for _, sh := range s.shards {
		<-sh.done
	}
	// Shards are gone; stream state is exclusively ours now.
	s.mu.Lock()
	streams := make([]*Stream, 0, len(s.streams))
	for _, st := range s.streams {
		streams = append(streams, st)
	}
	s.streams = make(map[uint64]*Stream)
	s.m.streams.Set(0)
	s.mu.Unlock()
	return streams, true
}

// closeSubscribers ends every feed; consumers see their channels close.
func (s *Server) closeSubscribers() {
	s.subMu.Lock()
	for sub := range s.subs {
		close(sub.ch)
	}
	s.subs = nil
	s.subMu.Unlock()
}

// Close drains and stops the server: it waits for in-flight publishes,
// lets the shards work off their queues, pads out partial blocks, signs
// the final batch, records a clean checkpoint, and closes every
// subscriber channel. Publishers blocked on backpressure at Close time
// abort with ErrClosed.
func (s *Server) Close() error {
	streams, ok := s.stop()
	if !ok {
		return ErrClosed
	}
	for _, st := range streams {
		st.flushPartial()
	}
	if n, err := s.signer.Flush(); err != nil {
		return err
	} else if n > 0 {
		s.m.batchFlushDrain.Inc()
		s.m.batchFill.Observe(int64(n))
	}
	s.noteBatchTotals()
	var cpErr error
	if s.cfg.Checkpoint != nil {
		// Everything is emitted and signed: tighten the watermarks to the
		// exact next block IDs so a clean restart leaves no ID gap.
		next := make(map[uint64]uint64, len(streams))
		for _, st := range streams {
			next[st.id] = st.snd.NextBlockID()
		}
		cpErr = s.cfg.Checkpoint.markClean(next)
	}
	s.closeSubscribers()
	return cpErr
}

// Kill stops the server the way a crash would: no partial-block flush, no
// final batch signature, no clean checkpoint — pending batch roots die
// unsigned, so their blocks' withheld signature packets are never
// delivered, exactly what subscribers of a SIGKILLed daemon observe. The
// write-ahead checkpoint still guarantees a restart never reuses a block
// ID. In-flight publishes finish (the process boundary in this in-process
// simulation is the shard drain); subscriber channels close. Chaos
// harnesses call this between cycles.
func (s *Server) Kill() {
	if _, ok := s.stop(); !ok {
		return
	}
	s.closeSubscribers()
}

// shard is one worker: a bounded FIFO task queue drained by a single
// goroutine, so all state reached from its tasks is single-threaded.
type shard struct {
	tasks chan func()
	done  chan struct{}
}

func newShard(queue int) *shard {
	sh := &shard{tasks: make(chan func(), queue), done: make(chan struct{})}
	go func() {
		defer close(sh.done)
		for fn := range sh.tasks {
			fn()
		}
	}()
	return sh
}
