package server

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/obs"
	"mcauth/internal/scheme"
	"mcauth/internal/scheme/authtree"
	"mcauth/internal/scheme/emss"
	"mcauth/internal/scheme/rohatgi"
	"mcauth/internal/scheme/signeach"
	"mcauth/internal/stream"
)

// testScheme builds stream id's scheme: the four non-timed constructions
// round-robin, so the pool mixes deferred signing (chained schemes) with
// the synchronous fallback (authtree, signeach).
func testScheme(id uint64, signer crypto.Signer) (scheme.Scheme, error) {
	switch id % 4 {
	case 0:
		return emss.New(emss.Config{N: 8, M: 2, D: 1}, signer)
	case 1:
		return rohatgi.New(4, signer)
	case 2:
		return authtree.New(8, signer)
	default:
		return signeach.New(4, signer)
	}
}

func testBlockSize(id uint64) int {
	switch id % 4 {
	case 0, 2:
		return 8
	default:
		return 4
	}
}

// consume drains sub through a demux whose receivers verify with key,
// returning per-stream authenticated counts once the channel closes.
func consume(t *testing.T, sub *Subscriber, key crypto.Signer, maxStreams int) <-chan map[uint64]int {
	t.Helper()
	out := make(chan map[uint64]int, 1)
	go func() {
		dmx, err := stream.NewDemux(func(id uint64) (*stream.Receiver, error) {
			s, err := testScheme(id, crypto.BatchCapable(key))
			if err != nil {
				return nil, err
			}
			return stream.NewReceiver(s, 64)
		}, maxStreams)
		if err != nil {
			t.Error(err)
			out <- nil
			return
		}
		counts := make(map[uint64]int)
		for d := range sub.C() {
			auths, err := dmx.Ingest(d.StreamID, d.Packet, time.Now())
			if err != nil {
				t.Error(err)
				break
			}
			for _, a := range auths {
				// Deadline flushes pad partial blocks with empty
				// payloads; count only real messages.
				if len(a.Payload) > 0 {
					counts[a.StreamID]++
				}
			}
		}
		out <- counts
	}()
	return out
}

func TestServerSustains64Streams(t *testing.T) {
	const (
		streams         = 64
		blocksPerStream = 6
	)
	key := crypto.NewSignerFromString("sustain")
	reg := obs.NewRegistry()
	srv, err := New(Config{
		Signer:             key,
		BatchSize:          32,
		FlushInterval:      40 * time.Millisecond,
		MaxSubscriberQueue: 1 << 16,
		Metrics:            reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := srv.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	counts := consume(t, sub, key, streams)

	for id := uint64(1); id <= streams; id++ {
		if err := srv.OpenStream(id, func(signer crypto.Signer) (scheme.Scheme, error) {
			return testScheme(id, signer)
		}); err != nil {
			t.Fatal(err)
		}
	}
	want := make(map[uint64]int, streams)
	var wg sync.WaitGroup
	for id := uint64(1); id <= streams; id++ {
		n := testBlockSize(id) * blocksPerStream
		want[id] = n
		wg.Add(1)
		go func(id uint64, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := srv.Publish(id, []byte(fmt.Sprintf("s%d-m%d", id, i))); err != nil {
					t.Errorf("stream %d: %v", id, err)
					return
				}
			}
		}(id, n)
	}
	wg.Wait()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if drops := sub.Drops(); drops != 0 {
		t.Fatalf("subscriber dropped %d packets despite a deep queue", drops)
	}
	got := <-counts
	for id, n := range want {
		if got[id] != n {
			t.Errorf("stream %d: authenticated %d of %d published", id, got[id], n)
		}
	}
	if ratio := srv.BatchTotals().AmortizationRatio(); ratio <= 1 {
		t.Errorf("amortization ratio %v, want > 1", ratio)
	}
	// The ratio must be visible through the metrics registry too.
	sigs := reg.Gauge("server.batch_signatures").Value()
	roots := reg.Gauge("server.batch_signed_roots").Value()
	if sigs == 0 || roots <= sigs {
		t.Errorf("metrics report %d signatures over %d roots, want amortization > 1", sigs, roots)
	}
	if v := reg.Counter("server.published").Value(); v != int64(streams*blocksPerStream*6) {
		// streams/4 each of block sizes 8,4,8,4 -> mean 6 per block.
		t.Errorf("server.published = %d", v)
	}
	if reg.Counter("server.packets_delivered").Value() == 0 {
		t.Error("server.packets_delivered never incremented")
	}
	// Per-stream throughput instruments exist and carry the counts.
	if v := reg.Counter("server.stream.1.published").Value(); v != int64(want[1]) {
		t.Errorf("server.stream.1.published = %d, want %d", v, want[1])
	}
}

func TestServerCloseDrainsPendingBatches(t *testing.T) {
	key := crypto.NewSignerFromString("drain")
	reg := obs.NewRegistry()
	srv, err := New(Config{
		Signer: key,
		// Huge batch and long deadline: nothing flushes unless Close
		// drains it.
		BatchSize:     512,
		FlushInterval: time.Hour,
		Metrics:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := srv.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	counts := consume(t, sub, key, 4)
	const id = 4 // emss, block size 8
	if err := srv.OpenStream(id, func(signer crypto.Signer) (scheme.Scheme, error) {
		return testScheme(id, signer)
	}); err != nil {
		t.Fatal(err)
	}
	// 11 messages: one full block plus a 3-message partial that only the
	// drain can emit (padded to the block size).
	for i := 0; i < 11; i++ {
		if err := srv.Publish(id, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	got := <-counts
	if got[id] != 11 { // all 11 real messages, across the padded drain block
		t.Fatalf("authenticated %d messages, want 11 (drained padded block)", got[id])
	}
	if reg.Counter("server.batch_flush_drain").Value() == 0 {
		t.Error("drain flush not recorded")
	}
	if st := srv.Stream(id); st != nil {
		t.Error("stream handle should be unavailable after Close")
	}
	if err := srv.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("second Close = %v, want ErrClosed", err)
	}
}

func TestServerDeadlineFlushBoundsDelay(t *testing.T) {
	const flush = 30 * time.Millisecond
	key := crypto.NewSignerFromString("deadline")
	reg := obs.NewRegistry()
	srv, err := New(Config{
		Signer:        key,
		BatchSize:     512, // never fills: the deadline is the only flush path
		FlushInterval: flush,
		Metrics:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := srv.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	counts := consume(t, sub, key, 4)
	const id = 4 // emss, block size 8
	if err := srv.OpenStream(id, func(signer crypto.Signer) (scheme.Scheme, error) {
		return testScheme(id, signer)
	}); err != nil {
		t.Fatal(err)
	}
	// One full block: its root sits in the batch until the deadline
	// flush signs it. The receiver's time-to-auth for the packets
	// waiting on the root is then bounded by the dependence-graph delay
	// (zero extra sends here: packets arrive back-to-back) plus at most
	// two flush intervals of signature hold.
	start := time.Now()
	for i := 0; i < 8; i++ {
		if err := srv.Publish(id, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(20 * flush)
	for time.Now().Before(deadline) && reg.Counter("server.batch_flush_deadline").Value() == 0 {
		time.Sleep(flush / 4)
	}
	signedAt := time.Now()
	if reg.Counter("server.batch_flush_deadline").Value() == 0 {
		t.Fatal("deadline flush never fired")
	}
	// Generous scheduling slack, but far below the time.Hour a stuck
	// batch would take: the hold must be on the order of the deadline.
	if hold := signedAt.Sub(start); hold > 10*flush {
		t.Errorf("root held %v, want within a few flush intervals (%v)", hold, flush)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if got := <-counts; got[id] != 8 {
		t.Fatalf("authenticated %d packets, want 8", got[id])
	}
	if reg.Histogram("server.root_hold_ns").Data().Count == 0 {
		t.Error("root hold histogram empty")
	}
}

func TestServerBackpressureNeverDeadlocks(t *testing.T) {
	key := crypto.NewSignerFromString("pressure")
	reg := obs.NewRegistry()
	srv, err := New(Config{
		Signer:             key,
		Shards:             2,
		BatchSize:          4,
		FlushInterval:      10 * time.Millisecond,
		MaxPendingPublish:  2,
		MaxSubscriberQueue: 1,
		Metrics:            reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Subscriber that never consumes: every queue overflows.
	sub, err := srv.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	const streams = 8
	for id := uint64(1); id <= streams; id++ {
		if err := srv.OpenStream(id, func(signer crypto.Signer) (scheme.Scheme, error) {
			return testScheme(id, signer)
		}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for id := uint64(1); id <= streams; id++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := srv.Publish(id, []byte("x")); err != nil {
					t.Errorf("stream %d: %v", id, err)
					return
				}
			}
		}(id)
	}
	wg.Wait() // deadlock here fails via go test -timeout
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if sub.Drops() == 0 {
		t.Error("expected backpressure drops with a stalled subscriber")
	}
	if reg.Counter("server.packets_dropped_backpressure").Value() == 0 {
		t.Error("drop counter not incremented")
	}
}

func TestServerConcurrentStreamLifecycle(t *testing.T) {
	key := crypto.NewSignerFromString("lifecycle")
	srv, err := New(Config{Signer: key, FlushInterval: 5 * time.Millisecond, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := srv.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	counts := consume(t, sub, key, 128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				id := uint64(g*30 + i + 1)
				err := srv.OpenStream(id, func(signer crypto.Signer) (scheme.Scheme, error) {
					return testScheme(id, signer)
				})
				if err != nil {
					t.Errorf("open %d: %v", id, err)
					return
				}
				for m := 0; m < 10; m++ {
					if err := srv.Publish(id, []byte("m")); err != nil {
						t.Errorf("publish %d: %v", id, err)
						return
					}
				}
				if i%2 == 0 {
					if err := srv.CloseStream(id); err != nil {
						t.Errorf("close %d: %v", id, err)
						return
					}
					if err := srv.Publish(id, []byte("late")); !errors.Is(err, ErrUnknownStream) {
						t.Errorf("publish after close = %v, want ErrUnknownStream", err)
						return
					}
				}
			}
		}(g)
	}
	// Churn subscribers concurrently with stream lifecycle.
	var subWG sync.WaitGroup
	for g := 0; g < 4; g++ {
		subWG.Add(1)
		go func() {
			defer subWG.Done()
			for i := 0; i < 50; i++ {
				extra, err := srv.Subscribe()
				if err != nil {
					return // server closed underneath us: fine
				}
				srv.Unsubscribe(extra)
			}
		}()
	}
	wg.Wait()
	subWG.Wait()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	<-counts
}

func TestServerErrorPaths(t *testing.T) {
	key := crypto.NewSignerFromString("errors")
	if _, err := New(Config{}); err == nil {
		t.Error("nil signer accepted")
	}
	if _, err := New(Config{Signer: key, BatchSize: crypto.MaxBatch + 1}); err == nil {
		t.Error("oversized batch accepted")
	}
	srv, err := New(Config{Signer: key})
	if err != nil {
		t.Fatal(err)
	}
	open := func(id uint64) error {
		return srv.OpenStream(id, func(signer crypto.Signer) (scheme.Scheme, error) {
			return testScheme(id, signer)
		})
	}
	if err := srv.OpenStream(1, nil); err == nil {
		t.Error("nil factory accepted")
	}
	if err := srv.OpenStream(1, func(crypto.Signer) (scheme.Scheme, error) {
		return nil, errors.New("boom")
	}); err == nil {
		t.Error("factory error swallowed")
	}
	if err := open(1); err != nil {
		t.Fatal(err)
	}
	if err := open(1); !errors.Is(err, ErrStreamExists) {
		t.Errorf("duplicate open = %v, want ErrStreamExists", err)
	}
	if err := srv.Publish(99, []byte("x")); !errors.Is(err, ErrUnknownStream) {
		t.Errorf("unknown publish = %v, want ErrUnknownStream", err)
	}
	if err := srv.CloseStream(99); !errors.Is(err, ErrUnknownStream) {
		t.Errorf("unknown close = %v, want ErrUnknownStream", err)
	}
	if ids := srv.Streams(); len(ids) != 1 || ids[0] != 1 {
		t.Errorf("Streams() = %v", ids)
	}
	if st := srv.Stream(1); st == nil || st.ID() != 1 {
		t.Error("Stream(1) handle missing")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := open(2); !errors.Is(err, ErrClosed) {
		t.Errorf("open after close = %v, want ErrClosed", err)
	}
	if err := srv.Publish(1, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("publish after close = %v, want ErrClosed", err)
	}
	if err := srv.CloseStream(1); !errors.Is(err, ErrClosed) {
		t.Errorf("close stream after close = %v, want ErrClosed", err)
	}
	if _, err := srv.Subscribe(); !errors.Is(err, ErrClosed) {
		t.Errorf("subscribe after close = %v, want ErrClosed", err)
	}
}

func TestSubscriberFilter(t *testing.T) {
	key := crypto.NewSignerFromString("filter")
	srv, err := New(Config{Signer: key, BatchSize: 4, FlushInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	only, err := srv.Subscribe(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []uint64{1, 2} {
		id := id
		if err := srv.OpenStream(id, func(signer crypto.Signer) (scheme.Scheme, error) {
			return testScheme(id, signer)
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []uint64{1, 2} {
		for i := 0; i < testBlockSize(id); i++ {
			if err := srv.Publish(id, []byte("m")); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	got := 0
	for d := range only.C() {
		if d.StreamID != 1 {
			t.Fatalf("filtered subscriber saw stream %d", d.StreamID)
		}
		got++
	}
	if got == 0 {
		t.Fatal("filtered subscriber saw nothing from stream 1")
	}
}
