package server

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/obs"
	"mcauth/internal/scheme"
	"mcauth/internal/scheme/emss"
	"mcauth/internal/stream"
)

// emssBuilder opens streams with a fixed EMSS geometry (n messages per
// block, one deferred signature packet per block).
func emssBuilder(n int) func(signer crypto.Signer) (scheme.Scheme, error) {
	return func(signer crypto.Signer) (scheme.Scheme, error) {
		return emss.New(emss.Config{N: n, M: 2, D: 1}, signer)
	}
}

func TestOpenCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "checkpoint.json")

	// Missing file: a cold start with no history.
	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.StartBlock(1) != 0 || cp.Clean() {
		t.Fatalf("fresh checkpoint: start %d clean %v", cp.StartBlock(1), cp.Clean())
	}

	// Corrupt file: refusing to guess is the only safe answer — resuming
	// from a wrong watermark could fork block identities.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCheckpoint(bad); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}

// newCheckpointedServer builds a server wired to the checkpoint at path.
func newCheckpointedServer(t *testing.T, path string, key crypto.Signer, reg *obs.Registry) *Server {
	t.Helper()
	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Signer:       key,
		Checkpoint:   cp,
		ReserveChunk: 4,
		// Batching configured so roots stay unsigned across a kill: the
		// batch never fills and the deadline never fires within the test.
		BatchSize:     crypto.MaxBatch,
		FlushInterval: time.Hour,
		Metrics:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// drainBlocks collects the distinct block IDs a subscriber saw, after its
// channel closes.
func drainBlocks(sub *Subscriber) map[uint64]bool {
	blocks := make(map[uint64]bool)
	for d := range sub.C() {
		blocks[d.Packet.BlockID] = true
	}
	return blocks
}

// TestCheckpointRestoreNeverForksBlocks is the crash-recovery round trip:
// a server is killed mid-batch (unsigned roots die with it), a second
// incarnation restores from the checkpoint, and the block IDs the two
// incarnations emit must be disjoint. Overlap would mean one block
// identity signed twice with different content — a fork a verifier could
// be equivocated with. The watermark also must not be the exact next
// block (that would require trusting volatile state a crash destroys);
// it is the write-ahead reservation boundary.
func TestCheckpointRestoreNeverForksBlocks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.json")
	key := crypto.NewSignerFromString("restore")

	srv1 := newCheckpointedServer(t, path, key, nil)
	sub1, err := srv1.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv1.OpenStream(1, emssBuilder(4)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ { // 3 complete blocks of 4
		if err := srv1.Publish(1, []byte("first-life")); err != nil {
			t.Fatal(err)
		}
	}
	srv1.Kill()
	first := drainBlocks(sub1)
	for _, id := range []uint64{0, 1, 2} {
		if !first[id] {
			t.Fatalf("first incarnation blocks %v, want 0-2", first)
		}
	}

	// The crash left a dirty checkpoint whose watermark is the reservation
	// boundary: block 0's emit reserved through 0+ReserveChunk.
	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Clean() {
		t.Fatal("checkpoint marked clean after a kill")
	}
	if got := cp.StartBlock(1); got != 4 {
		t.Fatalf("restored start block %d, want reservation watermark 4", got)
	}

	srv2 := newCheckpointedServer(t, path, key, nil)
	sub2, err := srv2.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.OpenStream(1, emssBuilder(4)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := srv2.Publish(1, []byte("second-life")); err != nil {
			t.Fatal(err)
		}
	}
	srv2.Kill()
	second := drainBlocks(sub2)
	if len(second) == 0 {
		t.Fatal("second incarnation emitted nothing")
	}
	for id := range second {
		if id < 4 {
			t.Fatalf("second incarnation reused block %d (< watermark 4): fork", id)
		}
		if first[id] {
			t.Fatalf("block %d emitted by both incarnations", id)
		}
	}
}

// TestCheckpointCleanRestart checks the graceful path: Close tightens the
// watermark from the chunk boundary to the exact next block ID, so a
// clean restart leaves no gap at all.
func TestCheckpointCleanRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.json")
	key := crypto.NewSignerFromString("clean-restart")

	srv, err := New(Config{
		Signer:        key,
		Checkpoint:    mustOpenCheckpoint(t, path),
		ReserveChunk:  64,
		BatchSize:     4,
		FlushInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.OpenStream(7, emssBuilder(4)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ { // exactly 2 blocks
		if err := srv.Publish(7, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Clean() {
		t.Fatal("graceful Close left a dirty checkpoint")
	}
	if got := cp.StartBlock(7); got != 2 {
		t.Fatalf("clean restart start block %d, want exact next 2", got)
	}
}

func mustOpenCheckpoint(t *testing.T, path string) *Checkpoint {
	t.Helper()
	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

// TestServerCloseRacesCloseStreamAndPublish hammers the shutdown paths
// under the race detector: publishers, stream closers, and Close all
// running concurrently. Errors are expected (the server is going away);
// data races, sends on closed channels, and deadlocks are not.
func TestServerCloseRacesCloseStreamAndPublish(t *testing.T) {
	key := crypto.NewSignerFromString("close-race")
	for iter := 0; iter < 20; iter++ {
		srv, err := New(Config{
			Signer:        key,
			BatchSize:     8,
			FlushInterval: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		const streams = 4
		for id := uint64(1); id <= streams; id++ {
			if err := srv.OpenStream(id, emssBuilder(4)); err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		for id := uint64(1); id <= streams; id++ {
			wg.Add(1)
			go func(id uint64) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					if err := srv.Publish(id, []byte("racing")); err != nil {
						return // server or stream closed under us — fine
					}
				}
			}(id)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = srv.CloseStream(2)
			_ = srv.CloseStream(3)
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(iter%3) * time.Millisecond)
			if err := srv.Close(); err != nil {
				t.Error(err)
			}
		}()
		wg.Wait()
		// Idempotent second close must not panic or hang.
		_ = srv.Close()
	}
}

// TestPrioritySheddingPrefersSignatures fills a subscriber queue that
// nobody drains and checks the shedding policy: data packets drop once
// the queue reaches its reserve boundary, while the later signature
// packets land in the reserved tail. Losing a data packet costs one
// message; losing a signature packet can collapse a whole block, so under
// backpressure the queue must always have room for signatures.
func TestPrioritySheddingPrefersSignatures(t *testing.T) {
	key := crypto.NewSignerFromString("shed")
	reg := obs.NewRegistry()
	srv, err := New(Config{
		Signer:             key,
		MaxSubscriberQueue: 25,
		SigQueueReserve:    4,
		// 4 blocks fill the batch, so the signature packets are delivered
		// synchronously with the last block's root — after all the data.
		BatchSize:     4,
		FlushInterval: time.Hour,
		Metrics:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := srv.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.OpenStream(1, emssBuilder(8)); err != nil {
		t.Fatal(err)
	}
	// 4 blocks of 8 messages. Each block emits 7 data-class packets plus a
	// held signature packet, so 28 data-class packets contend for the
	// 25-4=21 unreserved slots: 7 must shed.
	for i := 0; i < 32; i++ {
		if err := srv.Publish(1, []byte("backpressure")); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	var data, sigs int
	for d := range sub.C() {
		if sigClass(d.Packet) {
			sigs++
		} else {
			data++
		}
	}
	if data != 21 {
		t.Errorf("delivered %d data packets, want 21 (queue 25 minus reserve 4)", data)
	}
	if sigs != 4 {
		t.Errorf("delivered %d signature packets, want 4 (one per block)", sigs)
	}
	if got := reg.Counter("server.shed_data").Value(); got != 7 {
		t.Errorf("shed_data = %d, want 7", got)
	}
	if got := reg.Counter("server.shed_sig").Value(); got != 0 {
		t.Errorf("shed_sig = %d, want 0 — a signature was dropped under backpressure", got)
	}
}

// TestResumeFromReplaysVerifiableCatchUp publishes, waits for the batch
// signer to attach signatures, then asks the live server for a resume
// replay from block 0 — the session-resume path a reconnecting subscriber
// hits. The replay must authenticate end to end on a fresh receiver: both
// the data packets (retained at emit) and the signature packets (retained
// only once signed) have to be there.
func TestResumeFromReplaysVerifiableCatchUp(t *testing.T) {
	key := crypto.NewSignerFromString("resume")
	reg := obs.NewRegistry()
	srv, err := New(Config{
		Signer:        key,
		RepairBlocks:  8,
		BatchSize:     2,
		FlushInterval: time.Hour,
		Metrics:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.OpenStream(1, emssBuilder(4)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ { // 2 blocks -> batch of 2 roots signs itself
		if err := srv.Publish(1, []byte("resume-me")); err != nil {
			t.Fatal(err)
		}
	}
	// The signature packets enter the repair store only after the batch
	// signs; wait for that rather than racing it.
	deadline := time.Now().Add(5 * time.Second)
	for srv.BatchTotals().SignedRoots < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("batch never signed: %+v", srv.BatchTotals())
		}
		time.Sleep(time.Millisecond)
	}

	pkts := srv.ResumeFrom(1, 0)
	if len(pkts) == 0 {
		t.Fatal("ResumeFrom(1, 0) replayed nothing")
	}
	if got := reg.Counter("server.resume_catchup_packets").Value(); got != int64(len(pkts)) {
		t.Errorf("resume_catchup_packets = %d, want %d", got, len(pkts))
	}
	if srv.ResumeFrom(99, 0) != nil {
		t.Error("ResumeFrom on an unknown stream returned packets")
	}

	sch, err := emssBuilder(4)(srv.SchemeSigner())
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := stream.NewReceiver(sch, 16)
	if err != nil {
		t.Fatal(err)
	}
	authed := 0
	for _, p := range pkts {
		out, err := rcv.Ingest(p, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		authed += len(out)
	}
	if authed != 8 {
		t.Fatalf("replay authenticated %d of 8 messages", authed)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
