package main

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mcauth/internal/obs"
)

func TestDemoSustains64Streams(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-demo", "-streams", "64", "-blocks", "8",
		"-batch", "32", "-flush", "40ms", "-key", "test-demo",
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "published        4096 messages") {
		t.Errorf("expected 4096 published (64 streams x 8 blocks x mean block 8):\n%s", s)
	}
	if !strings.Contains(s, "verified         4096 messages") {
		t.Errorf("loopback receiver did not verify everything:\n%s", s)
	}
	// The run must amortize: strictly more than 1 root per signature.
	if strings.Contains(s, "amortization 1.00x") || strings.Contains(s, "amortization 0.") {
		t.Errorf("no signature amortization:\n%s", s)
	}
	if !strings.Contains(s, "dropped          0") {
		t.Errorf("demo dropped packets:\n%s", s)
	}
}

func TestDemoMetricsTable(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-demo", "-streams", "4", "-blocks", "2", "-scheme", "emss",
		"-metrics", "-", "-key", "test-metrics",
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	for _, metric := range []string{"server.published", "server.batch_signed_roots", "server.root_hold_ns"} {
		if !strings.Contains(out.String(), metric) {
			t.Errorf("metrics table missing %s:\n%s", metric, out.String())
		}
	}
}

func TestDaemonServesReceiverOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	daemonOut := make(chan error, 1)
	var daemonBuf bytes.Buffer
	go func() {
		daemonOut <- run([]string{
			"-listen", addr, "-streams", "8", "-blocks", "4", "-scheme", "mixed",
			"-rate", "200us", "-duration", "2s", "-batch", "16", "-flush", "30ms",
			"-key", "test-tcp",
		}, &daemonBuf)
	}()

	// Wait for the daemon to accept connections.
	var conn net.Conn
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if conn, err = net.Dial("tcp", addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if conn == nil {
		t.Fatalf("daemon never came up: %v", err)
	}
	conn.Close()

	var recvBuf bytes.Buffer
	recvErr := run([]string{
		"-connect", addr, "-streams", "8", "-scheme", "mixed", "-key", "test-tcp",
		// One quick redial after the daemon exits keeps the test fast while
		// still exercising the reconnect path's give-up branch.
		"-reconnect", "1", "-reconnect-backoff", "10ms",
	}, &recvBuf)
	if recvErr != nil {
		t.Fatalf("receiver: %v\n%s", recvErr, recvBuf.String())
	}
	if err := <-daemonOut; err != nil {
		t.Fatalf("daemon: %v\n%s", err, daemonBuf.String())
	}
	s := recvBuf.String()
	var packets, authed, padding, streams int64
	if _, err := fmt.Sscanf(s, "mcserved receiver: %d packets, %d verified messages (+%d padding) across %d streams",
		&packets, &authed, &padding, &streams); err != nil {
		t.Fatalf("unparseable receiver summary %q: %v", s, err)
	}
	if authed == 0 {
		t.Fatalf("receiver verified nothing:\n%s\ndaemon:\n%s", s, daemonBuf.String())
	}
	if streams == 0 {
		t.Fatalf("receiver saw no streams:\n%s", s)
	}
}

// TestMetricsIntervalWritesJSONLSeries runs a demo with -metrics-interval
// and checks the metrics file is an append-only JSONL series of timestamped
// snapshots — monotone timestamps, counters never decreasing, and a final
// line carrying the end-of-run totals.
func TestMetricsIntervalWritesJSONLSeries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.jsonl")
	var out bytes.Buffer
	err := run([]string{
		"-demo", "-streams", "8", "-blocks", "16", "-scheme", "emss",
		"-rate", "500us", // stretch the run so several ticks land
		"-metrics", path, "-metrics-interval", "20ms", "-key", "test-interval",
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	series, skipped, err := obs.ReadSnapshotLines(f)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("%d undecodable lines in a cleanly closed series", skipped)
	}
	// At least one tick plus the final flush.
	if len(series) < 2 {
		t.Fatalf("series has %d snapshots, want >= 2 (ticks + final)", len(series))
	}
	var lastAt, lastPublished int64
	for i, ts := range series {
		if ts.AtUnixNS <= lastAt {
			t.Errorf("snapshot %d timestamp %d not increasing (prev %d)", i, ts.AtUnixNS, lastAt)
		}
		lastAt = ts.AtUnixNS
		pub := ts.Metrics.Counters["server.published"]
		if pub < lastPublished {
			t.Errorf("snapshot %d server.published went backwards: %d -> %d", i, lastPublished, pub)
		}
		lastPublished = pub
	}
	final := series[len(series)-1].Metrics
	if want := int64(8 * 16 * 8); final.Counters["server.published"] != want {
		t.Errorf("final published = %d, want %d", final.Counters["server.published"], want)
	}
	if final.Histograms["server.root_hold_ns"].Count == 0 {
		t.Error("final snapshot missing root-hold observations")
	}
}

func TestOptionValidation(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{},
		{"-demo", "-listen", ":0"},
		{"-demo", "-streams", "0"},
		{"-demo", "-blocks", "0"},
		{"-demo", "-scheme", "nope"},
		{"-demo", "-metrics-interval", "1s"}, // needs -metrics FILE
		{"-demo", "-metrics", "-", "-metrics-interval", "1s"}, // stdout table can't carry a series
		{"-demo", "-metrics", "x", "-metrics-interval", "-1s"},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
