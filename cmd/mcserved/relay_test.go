package main

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mcauth/internal/fault"
	"mcauth/internal/obs"
	"mcauth/internal/packet"
	"mcauth/internal/server"
	"mcauth/internal/stream"
	"mcauth/internal/transport"
)

// relayTestOptions is the shared small topology: a handful of streams so
// daemon, relay and receiver all build matching schemes, with unlimited
// receiver redials for the kill tests.
func relayTestOptions(t *testing.T, key string) options {
	t.Helper()
	o, err := parseOptions([]string{
		"-listen", "ignored", "-streams", "4", "-n", "8",
		"-scheme", "emss", "-rate", "200us", "-batch", "16", "-flush", "30ms",
		"-repair", "64", "-key", key,
		"-reconnect", "-1", "-reconnect-backoff", "10ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// testDaemon is an in-process daemon incarnation: server, listener,
// publishers.
type testDaemon struct {
	srv    *server.Server
	ln     net.Listener
	stop   chan struct{}
	pubs   *sync.WaitGroup
	connWG *sync.WaitGroup
}

func startTestDaemon(t *testing.T, o options, reg *obs.Registry, tel *telemetry, addr string) *testDaemon {
	t.Helper()
	srv, err := startServer(o, reg, tel)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	stop := make(chan struct{})
	return &testDaemon{
		srv:    srv,
		ln:     ln,
		stop:   stop,
		pubs:   publishAll(srv, o, stop),
		connWG: acceptLoop(srv, ln, reg, tel.spanRing(), o.writeTimeout, nil),
	}
}

func (d *testDaemon) close(t *testing.T) {
	t.Helper()
	close(d.stop)
	d.pubs.Wait()
	if err := d.srv.Close(); err != nil {
		t.Fatal(err)
	}
	d.ln.Close()
	d.connWG.Wait()
}

// testRelay is an in-process relay incarnation between the daemon and the
// downstream listener.
type testRelay struct {
	rn     *relayNode
	ln     net.Listener
	stop   chan struct{}
	upDone chan error
	connWG *sync.WaitGroup
}

func startTestRelay(t *testing.T, o options, reg *obs.Registry, tel *telemetry, upstream, addr string,
	mutate func(uint64, *packet.Packet) *packet.Packet) *testRelay {
	t.Helper()
	rn := newRelayNode(o, reg, tel, upstream)
	rn.mutate = mutate
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	tr := &testRelay{rn: rn, ln: ln, stop: stop, upDone: make(chan error, 1)}
	tr.connWG = rn.acceptLoop(ln, stop)
	go func() { tr.upDone <- rn.runUpstream(stop) }()
	return tr
}

// kill tears the relay down mid-flight; all relay goroutines have exited
// when it returns, so the node's tallies are safe to read.
func (tr *testRelay) kill(t *testing.T) {
	t.Helper()
	close(tr.stop)
	tr.ln.Close()
	tr.connWG.Wait()
	if err := <-tr.upDone; err != nil {
		t.Fatal(err)
	}
}

// countingAuth wraps a receiver's onAuth hook with an atomic tally the
// test goroutine can poll while the session runs.
func countingAuth(count *atomic.Int64, inner func(uint64, stream.Authenticated) error) func(uint64, stream.Authenticated) error {
	return func(streamID uint64, a stream.Authenticated) error {
		if inner != nil {
			if err := inner(streamID, a); err != nil {
				return err
			}
		}
		if len(a.Payload) > 0 {
			count.Add(1)
		}
		return nil
	}
}

// waitAuthed polls until the receiver has authenticated at least want
// messages or the deadline passes.
func waitAuthed(count *atomic.Int64, want int64, deadline time.Duration) bool {
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		if count.Load() >= want {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return false
}

// TestRelayServesDownstream: daemon -> relay -> receiver in one process.
// The receiver connects only to the relay and must verify live traffic;
// an MCRQ repair request against the relay's store must be answered with
// the block's signature packets without touching the daemon.
func TestRelayServesDownstream(t *testing.T) {
	o := relayTestOptions(t, "test-relay-e2e")
	reg := obs.NewRegistry()
	tel := newTelemetry(o, reg)

	daemon := startTestDaemon(t, o, reg, tel, "127.0.0.1:0")
	relay := startTestRelay(t, o, reg, tel, daemon.ln.Addr().String(), "127.0.0.1:0", nil)
	relayAddr := relay.ln.Addr().String()

	rs, err := newReceiverSession(o, reg, tel, relayAddr)
	if err != nil {
		t.Fatal(err)
	}
	cv := &chaosVerifier{seen: make(map[string]string)}
	var authed atomic.Int64
	rs.onAuth = countingAuth(&authed, cv.check)
	recvStop := make(chan struct{})
	recvDone := make(chan error, 1)
	go func() { recvDone <- rs.run(recvStop) }()

	if !waitAuthed(&authed, 32, 10*time.Second) {
		t.Fatalf("receiver authenticated only %d messages through the relay", authed.Load())
	}

	// A repair request straight at the relay: pick a retained block whose
	// signature class has already arrived (batched signing attaches the
	// signature packets after the data, so the newest block may not have
	// them yet).
	var blockID uint64
	found := false
	for end := time.Now().Add(5 * time.Second); !found && time.Now().Before(end); {
		relay.rn.mu.Lock()
		newest := relay.rn.maxSeen[1]
		relay.rn.mu.Unlock()
		for b := newest; b > 0 && !found; b-- {
			probe := transport.RepairRequest{StreamID: 1, BlockID: b, Index: transport.NACKSigRequest}
			if len(relay.rn.repairPackets(probe)) > 0 {
				blockID, found = b, true
			}
		}
		if !found {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !found {
		t.Fatal("relay retains no block with signature packets")
	}
	conn, err := net.Dial("tcp", relayAddr)
	if err != nil {
		t.Fatal(err)
	}
	req := transport.RepairRequest{StreamID: 1, BlockID: blockID, Index: transport.NACKSigRequest}
	if err := transport.WriteRepairRequest(conn, req); err != nil {
		t.Fatal(err)
	}
	mr := transport.NewMuxFrameReader(conn)
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	sigSeen := false
	// The conn also receives live forwarding; scan until a signature
	// packet of the requested block shows up.
	for i := 0; i < 4096 && !sigSeen; i++ {
		id, p, err := mr.ReadPacket()
		if err != nil {
			break
		}
		if id == req.StreamID && p.BlockID == blockID && len(p.Signature) > 0 {
			sigSeen = true
		}
	}
	conn.Close()
	if !sigSeen {
		t.Error("MCRQ repair against the relay never produced the block's signature packet")
	}

	daemon.close(t)
	time.Sleep(100 * time.Millisecond)
	close(recvStop)
	relay.kill(t)
	if err := <-recvDone; err != nil {
		t.Fatal(err)
	}
	if cv.forged > 0 {
		t.Fatalf("%d forged authentications through the relay", cv.forged)
	}
	if relay.rn.repairs == 0 {
		t.Error("relay served no repairs")
	}
	if relay.rn.forwarded == 0 {
		t.Fatal("relay forwarded nothing")
	}
	if got := reg.Counter("relay.forwarded").Value(); got != relay.rn.forwarded {
		t.Fatalf("relay.forwarded counter %d != node tally %d", got, relay.rn.forwarded)
	}
}

// TestRelayChaosSoak is the mid-tree kill: the daemon stays up the whole
// soak while the relay between it and the receiver is killed and
// restarted (cold store) every cycle. The receiver must reconnect through
// the relay's address, the restarted relay must refill its retention from
// the daemon (its upstream resume hello asks From 0 on a cold store) and
// replay catch-up to the receiver's hello cursors, and nothing forged or
// forked may authenticate across any kill.
func TestRelayChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("relay chaos soak is a multi-second wall-clock test")
	}
	o := relayTestOptions(t, "test-relay-chaos")
	reg := obs.NewRegistry()
	tel := newTelemetry(o, reg)

	daemon := startTestDaemon(t, o, reg, tel, "127.0.0.1:0")
	upstreamAddr := daemon.ln.Addr().String()

	// Bind once to fix the relay's downstream address across incarnations.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	relayAddr := probe.Addr().String()
	probe.Close()

	cv := &chaosVerifier{seen: make(map[string]string)}
	var authed atomic.Int64
	rs, err := newReceiverSession(o, reg, tel, relayAddr)
	if err != nil {
		t.Fatal(err)
	}
	rs.onAuth = countingAuth(&authed, cv.check)
	recvStop := make(chan struct{})
	recvDone := make(chan error, 1)
	go func() { recvDone <- rs.run(recvStop) }()

	const cycles = 4
	var catchupTotal int64
	for cycle := 0; cycle < cycles; cycle++ {
		relay := startTestRelay(t, o, reg, tel, upstreamAddr, relayAddr, nil)
		time.Sleep(400 * time.Millisecond)
		relay.kill(t)
		catchupTotal += relay.rn.catchup
		// Downtime before the next incarnation: the receiver backs off and
		// falls behind the still-publishing daemon, and the restarted relay
		// refills its cold store from upstream before the receiver's resume
		// hello lands — the catch-up path this soak exists to exercise.
		time.Sleep(150 * time.Millisecond)
	}
	// One final incarnation drains the tail, so the receiver is not left
	// mid-reconnect when we stop it.
	relay := startTestRelay(t, o, reg, tel, upstreamAddr, relayAddr, nil)
	time.Sleep(400 * time.Millisecond)

	daemon.close(t)
	time.Sleep(200 * time.Millisecond)
	close(recvStop)
	relay.kill(t)
	catchupTotal += relay.rn.catchup
	if err := <-recvDone; err != nil {
		t.Fatalf("receiver: %v", err)
	}

	if cv.forged > 0 {
		t.Fatalf("%d forged or forked authentications across the relay kills", cv.forged)
	}
	if rs.sessions < 2 || rs.reconnects < 1 {
		t.Fatalf("receiver never reconnected through a relay kill (%d sessions) — the soak proved nothing", rs.sessions)
	}
	if catchupTotal == 0 {
		t.Fatal("no downstream resume catch-up was served by any relay incarnation")
	}
	if authed.Load() == 0 {
		t.Fatal("nothing authenticated through the soak")
	}
}

// TestRelayForgedRepair is the process-level adversarial invariant: a
// poisoned relay whose store and live forwarding both serve forged
// payloads on one stream must yield zero authenticated messages on that
// stream — and must not disturb the others. The relay holds no signing
// key, so a forgery cannot carry a valid hash chain or signature.
func TestRelayForgedRepair(t *testing.T) {
	o := relayTestOptions(t, "test-relay-forged")
	reg := obs.NewRegistry()
	tel := newTelemetry(o, reg)

	daemon := startTestDaemon(t, o, reg, tel, "127.0.0.1:0")
	const poisoned = uint64(1)
	var forgedInjected atomic.Int64
	mutate := func(streamID uint64, p *packet.Packet) *packet.Packet {
		if streamID != poisoned || len(p.Payload) == 0 {
			return p
		}
		fp := *p
		fp.Payload = fault.ForgedPayload(42 + p.BlockID<<16 + uint64(p.Index))
		forgedInjected.Add(1)
		return &fp
	}
	relay := startTestRelay(t, o, reg, tel, daemon.ln.Addr().String(), "127.0.0.1:0", mutate)

	rs, err := newReceiverSession(o, reg, tel, relay.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	var authed, poisonedAuthed atomic.Int64
	rs.onAuth = countingAuth(&authed, func(streamID uint64, a stream.Authenticated) error {
		if fault.IsForgedPayload(a.Payload) {
			return fmt.Errorf("forged payload authenticated on stream %d block %d index %d", streamID, a.BlockID, a.Index)
		}
		if streamID == poisoned && len(a.Payload) > 0 {
			poisonedAuthed.Add(1)
		}
		return nil
	})
	recvStop := make(chan struct{})
	recvDone := make(chan error, 1)
	go func() { recvDone <- rs.run(recvStop) }()

	if !waitAuthed(&authed, 24, 10*time.Second) {
		t.Fatalf("healthy streams authenticated only %d messages", authed.Load())
	}
	daemon.close(t)
	time.Sleep(100 * time.Millisecond)
	close(recvStop)
	relay.kill(t)
	if err := <-recvDone; err != nil {
		t.Fatalf("receiver: %v", err)
	}
	if forgedInjected.Load() == 0 {
		t.Fatal("the relay never forged anything; the scenario is vacuous")
	}
	if poisonedAuthed.Load() != 0 {
		t.Fatalf("security invariant violated: %d messages authenticated on the poisoned stream", poisonedAuthed.Load())
	}
	if authed.Load() == 0 {
		t.Fatal("healthy streams authenticated nothing")
	}
}

// TestRelayOptionValidation pins the -relay flag contract.
func TestRelayOptionValidation(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-relay"},
		{"-relay", "-connect", "x:1"},
		{"-relay", "-listen", ":0"},
		{"-relay", "-demo", "-connect", "x:1", "-listen", ":0"},
		{"-relay", "-chaos", "-connect", "x:1", "-listen", ":0"},
		{"-relay", "-connect", "x:1", "-listen", ":0", "-repair", "0"},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
