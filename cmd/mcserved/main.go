// Command mcserved is the serving daemon: it multiplexes many
// authenticated streams through a sharded internal/server with batched
// signing, and feeds receivers over the transport mux framing.
//
// Three modes:
//
//	mcserved -demo -streams 64 -blocks 20
//	    self-contained: serve, receive and verify in-process, print a
//	    summary (throughput, amortization ratio, drops).
//
//	mcserved -listen :7700 -streams 64 -rate 2ms
//	    daemon: publish synthetic messages on every stream and serve any
//	    number of TCP receivers until interrupted (or -duration).
//
//	mcserved -connect host:7700
//	    receiver: connect, demultiplex, verify, and print totals on EOF
//	    or interrupt. The -key and scheme flags must match the daemon's.
//
// The demo and daemon sign with a key derived from -key; receivers derive
// the same verification key, so a quickstart needs no key exchange.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/obs"
	"mcauth/internal/scheme"
	"mcauth/internal/scheme/augchain"
	"mcauth/internal/scheme/authtree"
	"mcauth/internal/scheme/emss"
	"mcauth/internal/scheme/rohatgi"
	"mcauth/internal/scheme/signeach"
	"mcauth/internal/server"
	"mcauth/internal/stream"
	"mcauth/internal/transport"
)

type options struct {
	demo    bool
	listen  string
	connect string

	streams  int
	schemeID string
	n        int
	blocks   int
	rate     time.Duration
	duration time.Duration

	batch int
	flush time.Duration
	key   string

	metrics         string
	metricsInterval time.Duration
	pprofAddr       string
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mcserved:", err)
		os.Exit(1)
	}
}

func parseOptions(args []string) (options, error) {
	fs := flag.NewFlagSet("mcserved", flag.ContinueOnError)
	var o options
	fs.BoolVar(&o.demo, "demo", false, "run the in-process demo (serve + receive + verify)")
	fs.StringVar(&o.listen, "listen", "", "serve receivers on this TCP address (e.g. :7700)")
	fs.StringVar(&o.connect, "connect", "", "act as a receiver: connect to a daemon and verify its streams")
	fs.IntVar(&o.streams, "streams", 64, "number of concurrent authenticated streams")
	fs.StringVar(&o.schemeID, "scheme", "mixed", "per-stream scheme: rohatgi|emss|augchain|authtree|signeach|mixed")
	fs.IntVar(&o.n, "n", 8, "block size (payloads per block)")
	fs.IntVar(&o.blocks, "blocks", 20, "blocks to publish per stream (demo mode)")
	fs.DurationVar(&o.rate, "rate", 0, "inter-message gap per stream (0 = as fast as possible)")
	fs.DurationVar(&o.duration, "duration", 0, "daemon lifetime (0 = until interrupt)")
	fs.IntVar(&o.batch, "batch", 64, "block roots per signature (batch signer auto-flush threshold)")
	fs.DurationVar(&o.flush, "flush", 50*time.Millisecond, "flush deadline for partial blocks and pending batches")
	fs.StringVar(&o.key, "key", "mcserved-demo", "signing-key derivation string (receivers derive the matching public key)")
	fs.StringVar(&o.metrics, "metrics", "", "write end-of-run metrics: '-' for a text table on stdout, else JSON to this file")
	fs.DurationVar(&o.metricsInterval, "metrics-interval", 0, "with -metrics FILE: append a timestamped JSONL metrics snapshot at this interval (plus one final line) instead of a single end-of-run object")
	fs.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof (+/metrics, /statusz) on this address")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	modes := 0
	for _, on := range []bool{o.demo, o.listen != "", o.connect != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		return options{}, errors.New("pick exactly one of -demo, -listen, -connect")
	}
	if o.streams < 1 {
		return options{}, fmt.Errorf("streams %d must be >= 1", o.streams)
	}
	if o.blocks < 1 {
		return options{}, fmt.Errorf("blocks %d must be >= 1", o.blocks)
	}
	if o.metricsInterval < 0 {
		return options{}, fmt.Errorf("metrics-interval %v must be >= 0", o.metricsInterval)
	}
	if o.metricsInterval > 0 && (o.metrics == "" || o.metrics == "-") {
		return options{}, errors.New("-metrics-interval needs -metrics FILE (the JSONL series goes to a file)")
	}
	return o, nil
}

// buildScheme constructs stream id's scheme; "mixed" rotates the four
// non-timed constructions so one daemon exercises deferred and
// synchronous signing together.
func buildScheme(kind string, n int, id uint64, signer crypto.Signer) (scheme.Scheme, error) {
	if kind == "mixed" {
		kind = []string{"emss", "rohatgi", "authtree", "signeach"}[id%4]
	}
	switch kind {
	case "rohatgi":
		return rohatgi.New(n, signer)
	case "emss":
		return emss.New(emss.Config{N: n, M: 2, D: 1}, signer)
	case "augchain":
		return augchain.New(augchain.Config{N: n, A: 2, B: 2}, signer)
	case "authtree":
		return authtree.New(n, signer)
	case "signeach":
		return signeach.New(n, signer)
	default:
		return nil, fmt.Errorf("unknown scheme %q", kind)
	}
}

func run(args []string, stdout io.Writer) error {
	o, err := parseOptions(args)
	if err != nil {
		return err
	}
	reg, finish, err := setupObservability(o, stdout)
	if err != nil {
		return err
	}
	switch {
	case o.connect != "":
		err = runReceiver(o, stdout)
	case o.listen != "":
		err = runDaemon(o, reg, stdout)
	default:
		err = runDemo(o, reg, stdout)
	}
	if err != nil {
		finish()
		return err
	}
	return finish()
}

func setupObservability(o options, stdout io.Writer) (*obs.Registry, func() error, error) {
	var (
		reg         *obs.Registry
		metricsFile *os.File
		exposer     *obs.Exposer
		err         error
	)
	if o.metrics != "" || o.pprofAddr != "" {
		reg = obs.NewRegistry()
		if o.metrics != "" && o.metrics != "-" {
			metricsFile, err = os.Create(o.metrics)
			if err != nil {
				return nil, nil, fmt.Errorf("metrics output unwritable: %w", err)
			}
		}
		crypto.Instrument(reg)
	}
	if o.pprofAddr != "" {
		ln, err := net.Listen("tcp", o.pprofAddr)
		if err != nil {
			return nil, nil, fmt.Errorf("pprof listen %s: %w", o.pprofAddr, err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		exposer = obs.NewExposer(reg, obs.DefaultExposeInterval)
		exposer.SetStatus(func(w io.Writer) {
			fmt.Fprintf(w, "mcserved -streams %d -scheme %s -batch %d -flush %v\n",
				o.streams, o.schemeID, o.batch, o.flush)
		})
		exposer.Register(mux)
		fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof/ (+/metrics, /statusz)\n", ln.Addr())
		go func() { _ = http.Serve(ln, mux) }()
	}
	// With -metrics-interval the file carries an append-only JSONL series
	// of timestamped snapshots (obs.TimedSnapshot per line) a dashboard can
	// tail, instead of one end-of-run object. The ticker goroutine owns the
	// file between start and finish; finish stops it, appends one final
	// line, and closes.
	var tickerStop chan struct{}
	var tickerDone chan struct{}
	writeLine := func() error {
		ts := obs.TimedSnapshot{AtUnixNS: time.Now().UnixNano(), Metrics: reg.Snapshot()}
		return ts.WriteJSONLine(metricsFile)
	}
	if o.metricsInterval > 0 && metricsFile != nil {
		tickerStop = make(chan struct{})
		tickerDone = make(chan struct{})
		go func() {
			defer close(tickerDone)
			tick := time.NewTicker(o.metricsInterval)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if err := writeLine(); err != nil {
						return // file gone; the final write reports it
					}
				case <-tickerStop:
					return
				}
			}
		}()
	}
	finish := func() error {
		crypto.Uninstrument()
		if exposer != nil {
			exposer.Refresh()
			exposer.Close()
		}
		if o.metrics == "-" && reg != nil {
			if err := reg.Snapshot().WriteText(stdout); err != nil {
				return fmt.Errorf("metrics output: %w", err)
			}
		}
		if tickerStop != nil {
			close(tickerStop)
			<-tickerDone
		}
		if metricsFile != nil {
			var err error
			if o.metricsInterval > 0 {
				err = writeLine()
			} else {
				err = reg.Snapshot().WriteJSON(metricsFile)
			}
			if err != nil {
				metricsFile.Close()
				return fmt.Errorf("metrics output: %w", err)
			}
			if err := metricsFile.Close(); err != nil {
				return fmt.Errorf("metrics output: %w", err)
			}
		}
		return nil
	}
	return reg, finish, nil
}

// startServer creates the server and opens every stream.
func startServer(o options, reg *obs.Registry) (*server.Server, error) {
	srv, err := server.New(server.Config{
		Signer:             crypto.NewSignerFromString(o.key),
		BatchSize:          o.batch,
		FlushInterval:      o.flush,
		MaxSubscriberQueue: 1 << 16,
		Metrics:            reg,
	})
	if err != nil {
		return nil, err
	}
	for id := uint64(1); id <= uint64(o.streams); id++ {
		id := id
		if err := srv.OpenStream(id, func(signer crypto.Signer) (scheme.Scheme, error) {
			return buildScheme(o.schemeID, o.n, id, signer)
		}); err != nil {
			srv.Close()
			return nil, err
		}
	}
	return srv, nil
}

// publishAll drives every stream from its own goroutine until each has
// sent its blocks (demo) or stop closes (daemon).
func publishAll(srv *server.Server, o options, stop <-chan struct{}) *sync.WaitGroup {
	var wg sync.WaitGroup
	for id := uint64(1); id <= uint64(o.streams); id++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			sch, err := buildScheme(o.schemeID, o.n, id, crypto.NewSignerFromString(o.key))
			if err != nil {
				return
			}
			total := sch.BlockSize() * o.blocks
			for i := 0; stop != nil || i < total; i++ {
				select {
				case <-stop:
					return
				default:
				}
				payload := []byte(fmt.Sprintf("stream-%d msg-%d", id, i))
				if err := srv.Publish(id, payload); err != nil {
					return // server closing
				}
				if o.rate > 0 {
					time.Sleep(o.rate)
				}
			}
		}(id)
	}
	return &wg
}

func runDemo(o options, reg *obs.Registry, stdout io.Writer) error {
	if reg == nil {
		// The demo's summary reads the server instruments, so it always
		// runs with a live registry.
		reg = obs.NewRegistry()
	}
	srv, err := startServer(o, reg)
	if err != nil {
		return err
	}
	sub, err := srv.Subscribe()
	if err != nil {
		srv.Close()
		return err
	}
	verified := make(chan [2]int64, 1)
	go func() {
		dmx, err := stream.NewDemux(func(id uint64) (*stream.Receiver, error) {
			s, err := buildScheme(o.schemeID, o.n, id, crypto.BatchCapable(crypto.NewSignerFromString(o.key)))
			if err != nil {
				return nil, err
			}
			return stream.NewReceiver(s, o.blocks+2)
		}, o.streams)
		if err != nil {
			verified <- [2]int64{}
			return
		}
		var authed, padding int64
		for d := range sub.C() {
			auths, err := dmx.Ingest(d.StreamID, d.Packet, time.Now())
			if err != nil {
				break
			}
			for _, a := range auths {
				if len(a.Payload) > 0 {
					authed++
				} else {
					padding++
				}
			}
		}
		verified <- [2]int64{authed, padding}
	}()

	start := time.Now()
	publishAll(srv, o, nil).Wait()
	if err := srv.Close(); err != nil {
		return err
	}
	elapsed := time.Since(start)
	counts := <-verified

	tot := srv.BatchTotals()
	fmt.Fprintf(stdout, "mcserved demo: %d streams (%s), %d blocks/stream, batch %d, flush %v\n",
		o.streams, o.schemeID, o.blocks, o.batch, o.flush)
	fmt.Fprintf(stdout, "published        %d messages in %v (%.0f msg/s)\n",
		reg.Counter("server.published").Value(), elapsed.Round(time.Millisecond),
		float64(reg.Counter("server.published").Value())/elapsed.Seconds())
	fmt.Fprintf(stdout, "blocks emitted   %d\n", reg.Counter("server.blocks").Value())
	fmt.Fprintf(stdout, "verified         %d messages (+%d padding) by loopback receiver\n", counts[0], counts[1])
	fmt.Fprintf(stdout, "signatures       %d over %d block roots (amortization %.2fx)\n",
		tot.Signatures, tot.SignedRoots, tot.AmortizationRatio())
	hold := reg.Histogram("server.root_hold_ns").Data()
	fmt.Fprintf(stdout, "root hold        p50 %v  p99 %v\n",
		time.Duration(hold.Quantile(0.5)).Round(time.Microsecond),
		time.Duration(hold.Quantile(0.99)).Round(time.Microsecond))
	fmt.Fprintf(stdout, "dropped          %d (subscriber backpressure)\n", sub.Drops())
	if counts[0] < reg.Counter("server.published").Value() {
		return fmt.Errorf("verified %d of %d published messages", counts[0], reg.Counter("server.published").Value())
	}
	return nil
}

func runDaemon(o options, reg *obs.Registry, stdout io.Writer) error {
	srv, err := startServer(o, reg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		srv.Close()
		return err
	}
	fmt.Fprintf(stdout, "mcserved: serving %d streams on %s\n", o.streams, ln.Addr())

	stop := make(chan struct{})
	pubs := publishAll(srv, o, stop)
	var connWG sync.WaitGroup
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			connWG.Add(1)
			go func() {
				defer connWG.Done()
				defer conn.Close()
				sub, err := srv.Subscribe()
				if err != nil {
					return
				}
				defer srv.Unsubscribe(sub)
				mw := transport.NewMuxFrameWriter(conn)
				mw.SetMetrics(reg)
				for d := range sub.C() {
					if err := mw.WritePacket(d.StreamID, d.Packet); err != nil {
						return
					}
				}
			}()
		}
	}()

	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt)
	defer signal.Stop(interrupt)
	if o.duration > 0 {
		select {
		case <-interrupt:
		case <-time.After(o.duration):
		}
	} else {
		<-interrupt
	}
	close(stop)
	pubs.Wait()
	err = srv.Close() // closes subscriber channels -> conn writers exit
	ln.Close()
	connWG.Wait()
	tot := srv.BatchTotals()
	fmt.Fprintf(stdout, "mcserved: stopped; %d signatures over %d roots (amortization %.2fx)\n",
		tot.Signatures, tot.SignedRoots, tot.AmortizationRatio())
	return err
}

func runReceiver(o options, stdout io.Writer) error {
	conn, err := net.Dial("tcp", o.connect)
	if err != nil {
		return err
	}
	defer conn.Close()
	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt)
	defer signal.Stop(interrupt)
	go func() {
		<-interrupt
		conn.Close() // unblocks the read loop
	}()

	dmx, err := stream.NewDemux(func(id uint64) (*stream.Receiver, error) {
		s, err := buildScheme(o.schemeID, o.n, id, crypto.BatchCapable(crypto.NewSignerFromString(o.key)))
		if err != nil {
			return nil, err
		}
		return stream.NewReceiver(s, 64)
	}, o.streams)
	if err != nil {
		return err
	}
	mr := transport.NewMuxFrameReader(conn)
	var authed, padding, packets int64
	for {
		id, p, err := mr.ReadPacket()
		if err != nil {
			break // EOF, daemon shutdown, or interrupt
		}
		packets++
		auths, err := dmx.Ingest(id, p, time.Now())
		if err != nil {
			return err
		}
		for _, a := range auths {
			if len(a.Payload) > 0 {
				authed++
			} else {
				padding++
			}
		}
	}
	fmt.Fprintf(stdout, "mcserved receiver: %d packets, %d verified messages (+%d padding) across %d streams\n",
		packets, authed, padding, len(dmx.StreamIDs()))
	return nil
}
