// Command mcserved is the serving daemon: it multiplexes many
// authenticated streams through a sharded internal/server with batched
// signing, and feeds receivers over the transport mux framing.
//
// Three modes:
//
//	mcserved -demo -streams 64 -blocks 20
//	    self-contained: serve, receive and verify in-process, print a
//	    summary (throughput, amortization ratio, drops).
//
//	mcserved -listen :7700 -streams 64 -rate 2ms
//	    daemon: publish synthetic messages on every stream and serve any
//	    number of TCP receivers until interrupted (or -duration).
//
//	mcserved -connect host:7700
//	    receiver: connect, demultiplex, verify, and print totals on EOF
//	    or interrupt. The -key and scheme flags must match the daemon's.
//
// The demo and daemon sign with a key derived from -key; receivers derive
// the same verification key, so a quickstart needs no key exchange.
//
// A fourth mode places the daemon behind a fan-out tier:
//
//	mcserved -relay -connect host:7700 -listen :7701
//	    relay: subscribe upstream like a receiver, retain -repair blocks
//	    per stream, and re-serve the feed downstream — live forwarding,
//	    resume-hello catch-up, and MCRQ signature repairs all answered
//	    from the relay's local store, absorbing recovery traffic one hop
//	    from the edge. Relays hold no keys and verify nothing; a
//	    tampering relay only produces packets receivers reject. Relays
//	    chain: a relay's -connect may point at another relay. See
//	    relay.go.
//
// A fifth mode exercises the resilience machinery end to end:
//
//	mcserved -chaos -cycles 5 -conn-reset 0.02 -conn-stall 0.01
//	    chaos self-test: run daemon + reconnecting receiver in-process,
//	    kill and restart the server every -kill-after with connection
//	    resets, torn writes and stalled reads injected, then assert zero
//	    forged authentications, no forked blocks, and measured session
//	    resume. See chaos.go.
//
// Daemons are crash-recoverable when given -checkpoint FILE: block IDs are
// write-ahead reserved there, so a killed and restarted daemon never
// reuses a block identity, and SIGTERM flushes a clean checkpoint.
// Receivers reconnect with capped exponential backoff (-reconnect,
// -reconnect-backoff) and resume their session via a hello carrying
// per-stream replay cursors, answered from the server's per-stream repair
// retention (-repair).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/obs"
	"mcauth/internal/packet"
	"mcauth/internal/scheme"
	"mcauth/internal/scheme/augchain"
	"mcauth/internal/scheme/authtree"
	"mcauth/internal/scheme/emss"
	"mcauth/internal/scheme/rohatgi"
	"mcauth/internal/scheme/signeach"
	"mcauth/internal/server"
	"mcauth/internal/stats"
	"mcauth/internal/stream"
	"mcauth/internal/transport"
	"mcauth/internal/verifier"
)

type options struct {
	demo    bool
	listen  string
	connect string
	chaos   bool
	relay   bool

	streams  int
	schemeID string
	n        int
	blocks   int
	rate     time.Duration
	duration time.Duration

	batch int
	flush time.Duration
	key   string

	verifyBatch int
	verifyCache int

	checkpoint   string
	repair       int
	writeTimeout time.Duration

	reconnect        int
	reconnectBackoff time.Duration

	cycles    int
	killAfter time.Duration
	connReset float64
	connStall float64
	chaosSeed uint64
	minAuth   float64

	metrics         string
	metricsInterval time.Duration
	pprofAddr       string

	spanBuf    int
	flight     string
	sloWindow  time.Duration
	sloP99     time.Duration
	sloMinAuth float64
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mcserved:", err)
		os.Exit(1)
	}
}

func parseOptions(args []string) (options, error) {
	fs := flag.NewFlagSet("mcserved", flag.ContinueOnError)
	var o options
	fs.BoolVar(&o.demo, "demo", false, "run the in-process demo (serve + receive + verify)")
	fs.StringVar(&o.listen, "listen", "", "serve receivers on this TCP address (e.g. :7700)")
	fs.StringVar(&o.connect, "connect", "", "act as a receiver: connect to a daemon and verify its streams")
	fs.BoolVar(&o.chaos, "chaos", false, "run the chaos self-test: kill/restart the daemon across -cycles with conn faults injected, assert recovery invariants")
	fs.BoolVar(&o.relay, "relay", false, "run as a fan-out relay: subscribe to -connect, retain -repair blocks per stream, and re-serve the feed (live + resume catch-up + MCRQ repairs) on -listen")
	fs.IntVar(&o.streams, "streams", 64, "number of concurrent authenticated streams")
	fs.StringVar(&o.schemeID, "scheme", "mixed", "per-stream scheme: rohatgi|emss|augchain|authtree|signeach|mixed")
	fs.IntVar(&o.n, "n", 8, "block size (payloads per block)")
	fs.IntVar(&o.blocks, "blocks", 20, "blocks to publish per stream (demo mode)")
	fs.DurationVar(&o.rate, "rate", 0, "inter-message gap per stream (0 = as fast as possible)")
	fs.DurationVar(&o.duration, "duration", 0, "daemon lifetime (0 = until interrupt)")
	fs.IntVar(&o.batch, "batch", 64, "block roots per signature (batch signer auto-flush threshold)")
	fs.DurationVar(&o.flush, "flush", 50*time.Millisecond, "flush deadline for partial blocks and pending batches")
	fs.StringVar(&o.key, "key", "mcserved-demo", "signing-key derivation string (receivers derive the matching public key)")
	fs.IntVar(&o.verifyBatch, "verify-batch", 32, "receiver fast path: defer signature checks to a batch-verify queue holding this many pending packets, amortizing duplicate underlying checks (0 = verify synchronously)")
	fs.IntVar(&o.verifyCache, "verify-cache", 1024, "receiver fast path: shared per-block verification cache entries — packets proven authentic once are accepted by digest on re-receipt (0 = off)")
	fs.StringVar(&o.checkpoint, "checkpoint", "", "crash-recovery checkpoint file: block IDs are write-ahead reserved here, restarts resume past every emitted block")
	fs.IntVar(&o.repair, "repair", 64, "blocks of per-stream packet retention for session-resume catch-up (0 disables)")
	fs.DurationVar(&o.writeTimeout, "write-timeout", 10*time.Second, "per-packet write deadline on subscriber connections (0 = none); a stalled reader loses its conn instead of pinning the writer")
	fs.IntVar(&o.reconnect, "reconnect", 8, "receiver: give up after this many consecutive failed dials (-1 = retry forever, 0 = single session, no reconnect)")
	fs.DurationVar(&o.reconnectBackoff, "reconnect-backoff", 50*time.Millisecond, "receiver: initial redial backoff (doubles with jitter, capped at 1s)")
	fs.IntVar(&o.cycles, "cycles", 5, "chaos: daemon kill/restart cycles")
	fs.DurationVar(&o.killAfter, "kill-after", 300*time.Millisecond, "chaos: serving time before each kill")
	fs.Float64Var(&o.connReset, "conn-reset", 0.01, "chaos: per-write probability a subscriber conn resets mid-frame")
	fs.Float64Var(&o.connStall, "conn-stall", 0.005, "chaos: per-read probability the receiver stalls")
	fs.Uint64Var(&o.chaosSeed, "chaos-seed", 1, "chaos: fault-injection RNG seed")
	fs.Float64Var(&o.minAuth, "min-auth", 0.3, "chaos: minimum fraction of published messages that must authenticate")
	fs.StringVar(&o.metrics, "metrics", "", "write end-of-run metrics: '-' for a text table on stdout, else JSON to this file")
	fs.DurationVar(&o.metricsInterval, "metrics-interval", 0, "with -metrics FILE: append a timestamped JSONL metrics snapshot at this interval (plus one final line) instead of a single end-of-run object")
	fs.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof (+/metrics, /statusz, /healthz, /slo) on this address")
	fs.IntVar(&o.spanBuf, "span-buf", 8192, "causal span ring capacity: per-packet lifecycle spans (push, shard enqueue, sign attach, mux write, decode, deferred park, resolve, authenticate/reject) kept for the flight recorder (0 disables tracing)")
	fs.StringVar(&o.flight, "flight", "", "write the flight-recorder post-mortem (JSONL) to this file on panic, SIGUSR1, chaos kill, or SLO budget exhaustion (render with mcreport -flight)")
	fs.DurationVar(&o.sloWindow, "slo-window", time.Minute, "per-stream SLO sliding evaluation window")
	fs.DurationVar(&o.sloP99, "slo-p99", 0, "per-stream SLO: p99 time-to-auth objective (0 = no latency objective)")
	fs.Float64Var(&o.sloMinAuth, "slo-min-auth", 0, "per-stream SLO: minimum authenticated fraction objective, the paper's q_min as a live target (0 = off)")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	modes := 0
	for _, on := range []bool{o.demo, o.listen != "", o.connect != "", o.chaos} {
		if on {
			modes++
		}
	}
	if o.relay {
		// A relay is both a subscriber and a server: it needs -connect
		// (upstream) and -listen (downstream) together.
		if o.demo || o.chaos {
			return options{}, errors.New("-relay cannot combine with -demo or -chaos")
		}
		if o.connect == "" || o.listen == "" {
			return options{}, errors.New("-relay needs both -connect (upstream feed) and -listen (downstream address)")
		}
	} else if modes != 1 {
		return options{}, errors.New("pick exactly one of -demo, -listen, -connect, -chaos (or -relay with -connect and -listen)")
	}
	if o.streams < 1 {
		return options{}, fmt.Errorf("streams %d must be >= 1", o.streams)
	}
	if o.blocks < 1 {
		return options{}, fmt.Errorf("blocks %d must be >= 1", o.blocks)
	}
	if o.repair < 0 {
		return options{}, fmt.Errorf("repair %d must be >= 0", o.repair)
	}
	if o.verifyBatch < 0 {
		return options{}, fmt.Errorf("verify-batch %d must be >= 0", o.verifyBatch)
	}
	if o.verifyCache < 0 {
		return options{}, fmt.Errorf("verify-cache %d must be >= 0", o.verifyCache)
	}
	if o.reconnect < -1 {
		return options{}, fmt.Errorf("reconnect %d must be >= -1", o.reconnect)
	}
	if o.reconnectBackoff <= 0 {
		return options{}, fmt.Errorf("reconnect-backoff %v must be > 0", o.reconnectBackoff)
	}
	if o.chaos {
		if o.cycles < 1 {
			return options{}, fmt.Errorf("cycles %d must be >= 1", o.cycles)
		}
		if o.killAfter <= 0 {
			return options{}, fmt.Errorf("kill-after %v must be > 0", o.killAfter)
		}
		if o.connReset < 0 || o.connReset > 1 || o.connStall < 0 || o.connStall > 1 {
			return options{}, errors.New("conn-reset and conn-stall must be in [0,1]")
		}
		if o.minAuth < 0 || o.minAuth > 1 {
			return options{}, fmt.Errorf("min-auth %v must be in [0,1]", o.minAuth)
		}
	}
	if o.metricsInterval < 0 {
		return options{}, fmt.Errorf("metrics-interval %v must be >= 0", o.metricsInterval)
	}
	if o.spanBuf < 0 {
		return options{}, fmt.Errorf("span-buf %d must be >= 0", o.spanBuf)
	}
	if o.sloWindow <= 0 {
		return options{}, fmt.Errorf("slo-window %v must be > 0", o.sloWindow)
	}
	if o.sloP99 < 0 {
		return options{}, fmt.Errorf("slo-p99 %v must be >= 0", o.sloP99)
	}
	if o.sloMinAuth < 0 || o.sloMinAuth > 1 {
		return options{}, fmt.Errorf("slo-min-auth %v must be in [0,1]", o.sloMinAuth)
	}
	if o.metricsInterval > 0 && (o.metrics == "" || o.metrics == "-") {
		return options{}, errors.New("-metrics-interval needs -metrics FILE (the JSONL series goes to a file)")
	}
	return o, nil
}

// buildScheme constructs stream id's scheme; "mixed" rotates the four
// non-timed constructions so one daemon exercises deferred and
// synchronous signing together.
func buildScheme(kind string, n int, id uint64, signer crypto.Signer) (scheme.Scheme, error) {
	if kind == "mixed" {
		kind = []string{"emss", "rohatgi", "authtree", "signeach"}[id%4]
	}
	switch kind {
	case "rohatgi":
		return rohatgi.New(n, signer)
	case "emss":
		return emss.New(emss.Config{N: n, M: 2, D: 1}, signer)
	case "augchain":
		return augchain.New(augchain.Config{N: n, A: 2, B: 2}, signer)
	case "authtree":
		return authtree.New(n, signer)
	case "signeach":
		return signeach.New(n, signer)
	default:
		return nil, fmt.Errorf("unknown scheme %q", kind)
	}
}

func run(args []string, stdout io.Writer) error {
	o, err := parseOptions(args)
	if err != nil {
		return err
	}
	reg, health, tel, finish, err := setupObservability(o, stdout)
	if err != nil {
		return err
	}
	// The crash artifact outlives the crash: a panic anywhere below dumps
	// the flight record before re-panicking, and SIGUSR1 dumps on demand.
	defer tel.recoverDump()
	stopUSR1 := tel.installSIGUSR1()
	defer stopUSR1()
	switch {
	case o.relay:
		err = runRelay(o, reg, tel, stdout)
	case o.connect != "":
		err = runReceiver(o, reg, tel, stdout)
	case o.listen != "":
		err = runDaemon(o, reg, health, tel, stdout)
	case o.chaos:
		err = runChaos(o, reg, tel, stdout)
	default:
		err = runDemo(o, reg, tel, stdout)
	}
	if err != nil {
		finish()
		return err
	}
	return finish()
}

func setupObservability(o options, stdout io.Writer) (*obs.Registry, *obs.Health, *telemetry, func() error, error) {
	var (
		reg         *obs.Registry
		metricsFile *os.File
		exposer     *obs.Exposer
		err         error
	)
	health := &obs.Health{}
	if o.metrics != "" || o.pprofAddr != "" {
		reg = obs.NewRegistry()
		if o.metrics != "" && o.metrics != "-" {
			metricsFile, err = os.Create(o.metrics)
			if err != nil {
				return nil, nil, nil, nil, fmt.Errorf("metrics output unwritable: %w", err)
			}
		}
		crypto.Instrument(reg)
	}
	tel := newTelemetry(o, reg)
	if o.pprofAddr != "" {
		ln, err := net.Listen("tcp", o.pprofAddr)
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("pprof listen %s: %w", o.pprofAddr, err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		exposer = obs.NewExposer(reg, obs.DefaultExposeInterval)
		exposer.SetStatus(func(w io.Writer) {
			fmt.Fprintf(w, "mcserved -streams %d -scheme %s -batch %d -flush %v (%s)\n",
				o.streams, o.schemeID, o.batch, o.flush, health)
			tel.writeStatus(w)
		})
		exposer.Register(mux)
		health.Register(mux)
		tel.registerHTTP(mux)
		endpoints := "/metrics, /statusz, /healthz"
		if tel != nil {
			endpoints += ", /slo"
		}
		fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof/ (+%s)\n", ln.Addr(), endpoints)
		go func() { _ = http.Serve(ln, mux) }()
	}
	// With -metrics-interval the file carries an append-only JSONL series
	// of timestamped snapshots (obs.TimedSnapshot per line) a dashboard can
	// tail, instead of one end-of-run object. The ticker goroutine owns the
	// file between start and finish; finish stops it, appends one final
	// line, and closes.
	var tickerStop chan struct{}
	var tickerDone chan struct{}
	writeLine := func() error {
		ts := obs.TimedSnapshot{AtUnixNS: time.Now().UnixNano(), Metrics: reg.Snapshot()}
		return ts.WriteJSONLine(metricsFile)
	}
	if o.metricsInterval > 0 && metricsFile != nil {
		tickerStop = make(chan struct{})
		tickerDone = make(chan struct{})
		go func() {
			defer close(tickerDone)
			tick := time.NewTicker(o.metricsInterval)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if err := writeLine(); err != nil {
						return // file gone; the final write reports it
					}
				case <-tickerStop:
					return
				}
			}
		}()
	}
	finish := func() error {
		health.SetDraining()
		crypto.Uninstrument()
		if exposer != nil {
			exposer.Refresh()
			exposer.Close()
		}
		if o.metrics == "-" && reg != nil {
			if err := reg.Snapshot().WriteText(stdout); err != nil {
				return fmt.Errorf("metrics output: %w", err)
			}
		}
		if tickerStop != nil {
			close(tickerStop)
			<-tickerDone
		}
		if metricsFile != nil {
			var err error
			if o.metricsInterval > 0 {
				err = writeLine()
			} else {
				err = reg.Snapshot().WriteJSON(metricsFile)
			}
			if err != nil {
				metricsFile.Close()
				return fmt.Errorf("metrics output: %w", err)
			}
			if err := metricsFile.Close(); err != nil {
				return fmt.Errorf("metrics output: %w", err)
			}
		}
		return nil
	}
	return reg, health, tel, finish, nil
}

// startServer creates the server and opens every stream. When the options
// name a checkpoint file it is opened (or resumed) here, so a restarted
// daemon picks up every stream past its reserved watermark.
func startServer(o options, reg *obs.Registry, tel *telemetry) (*server.Server, error) {
	var cp *server.Checkpoint
	if o.checkpoint != "" {
		var err error
		if cp, err = server.OpenCheckpoint(o.checkpoint); err != nil {
			return nil, err
		}
	}
	srv, err := server.New(server.Config{
		Signer:             crypto.NewSignerFromString(o.key),
		BatchSize:          o.batch,
		FlushInterval:      o.flush,
		MaxSubscriberQueue: 1 << 16,
		Metrics:            reg,
		Spans:              tel.spanRing(),
		Checkpoint:         cp,
		RepairBlocks:       o.repair,
	})
	if err != nil {
		return nil, err
	}
	for id := uint64(1); id <= uint64(o.streams); id++ {
		id := id
		if err := srv.OpenStream(id, func(signer crypto.Signer) (scheme.Scheme, error) {
			return buildScheme(o.schemeID, o.n, id, signer)
		}); err != nil {
			srv.Close()
			return nil, err
		}
	}
	return srv, nil
}

// publishAll drives every stream from its own goroutine until each has
// sent its blocks (demo) or stop closes (daemon).
func publishAll(srv *server.Server, o options, stop <-chan struct{}) *sync.WaitGroup {
	var wg sync.WaitGroup
	for id := uint64(1); id <= uint64(o.streams); id++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			sch, err := buildScheme(o.schemeID, o.n, id, crypto.NewSignerFromString(o.key))
			if err != nil {
				return
			}
			total := sch.BlockSize() * o.blocks
			for i := 0; stop != nil || i < total; i++ {
				select {
				case <-stop:
					return
				default:
				}
				payload := []byte(fmt.Sprintf("stream-%d msg-%d", id, i))
				if err := srv.Publish(id, payload); err != nil {
					return // server closing
				}
				if o.rate > 0 {
					time.Sleep(o.rate)
				}
			}
		}(id)
	}
	return &wg
}

// verifyFastPath builds the receiver fast path the options ask for and
// attaches it to the demux: a shared per-block verification cache
// (-verify-cache) and/or a deferred batch-verify queue (-verify-batch).
// It returns the queue (nil when batching is off) so the ingest loop can
// resolve pending verdicts.
func verifyFastPath(o options, reg *obs.Registry, dmx *stream.Demux) (*crypto.BatchVerifyQueue, error) {
	var (
		cache *verifier.SharedCache
		q     *crypto.BatchVerifyQueue
		err   error
	)
	if o.verifyCache > 0 {
		if cache, err = verifier.NewSharedCache(o.verifyCache); err != nil {
			return nil, err
		}
		if reg != nil {
			cache.SetMetrics(reg)
		}
	}
	if o.verifyBatch > 0 {
		sigEntries := o.verifyCache
		if sigEntries <= 0 {
			sigEntries = 1024
		}
		sig, err := crypto.NewSigCache(sigEntries)
		if err != nil {
			return nil, err
		}
		if q, err = crypto.NewBatchVerifyQueue(o.verifyBatch, sig); err != nil {
			return nil, err
		}
		q.SetMetrics(reg)
	}
	dmx.SetVerifyFastPath(cache, q)
	return q, nil
}

func runDemo(o options, reg *obs.Registry, tel *telemetry, stdout io.Writer) error {
	if reg == nil {
		// The demo's summary reads the server instruments, so it always
		// runs with a live registry.
		reg = obs.NewRegistry()
		tel.bindRegistry(reg)
	}
	srv, err := startServer(o, reg, tel)
	if err != nil {
		return err
	}
	sub, err := srv.Subscribe()
	if err != nil {
		srv.Close()
		return err
	}
	verified := make(chan [2]int64, 1)
	go func() {
		dmx, err := stream.NewDemux(func(id uint64) (*stream.Receiver, error) {
			s, err := buildScheme(o.schemeID, o.n, id, crypto.BatchCapable(crypto.NewSignerFromString(o.key)))
			if err != nil {
				return nil, err
			}
			return stream.NewReceiver(s, o.blocks+2)
		}, o.streams)
		if err != nil {
			verified <- [2]int64{}
			return
		}
		dmx.SetSpans(tel.spanRing())
		q, err := verifyFastPath(o, reg, dmx)
		if err != nil {
			verified <- [2]int64{}
			return
		}
		var authed, padding, packets int64
		count := func(auths []stream.StreamAuthenticated) {
			for _, a := range auths {
				if len(a.Payload) > 0 {
					authed++
				} else {
					padding++
				}
			}
		}
		for d := range sub.C() {
			auths, err := dmx.Ingest(d.StreamID, d.Packet, time.Now())
			if err != nil {
				break
			}
			count(auths)
			if q != nil {
				count(dmx.DrainDeferred())
			}
			if packets++; packets%sloFeedEvery == 0 {
				tel.feedSLO(dmx)
			}
		}
		if q != nil {
			// Settle the tail: verdicts still pending when the feed ends.
			q.Resolve()
			count(dmx.DrainDeferred())
		}
		tel.feedSLO(dmx)
		verified <- [2]int64{authed, padding}
	}()

	start := time.Now()
	publishAll(srv, o, nil).Wait()
	if err := srv.Close(); err != nil {
		return err
	}
	elapsed := time.Since(start)
	counts := <-verified

	tot := srv.BatchTotals()
	fmt.Fprintf(stdout, "mcserved demo: %d streams (%s), %d blocks/stream, batch %d, flush %v\n",
		o.streams, o.schemeID, o.blocks, o.batch, o.flush)
	fmt.Fprintf(stdout, "published        %d messages in %v (%.0f msg/s)\n",
		reg.Counter("server.published").Value(), elapsed.Round(time.Millisecond),
		float64(reg.Counter("server.published").Value())/elapsed.Seconds())
	fmt.Fprintf(stdout, "blocks emitted   %d\n", reg.Counter("server.blocks").Value())
	fmt.Fprintf(stdout, "verified         %d messages (+%d padding) by loopback receiver\n", counts[0], counts[1])
	fmt.Fprintf(stdout, "signatures       %d over %d block roots (amortization %.2fx)\n",
		tot.Signatures, tot.SignedRoots, tot.AmortizationRatio())
	hold := reg.Histogram("server.root_hold_ns").Data()
	fmt.Fprintf(stdout, "root hold        p50 %v  p99 %v\n",
		time.Duration(hold.Quantile(0.5)).Round(time.Microsecond),
		time.Duration(hold.Quantile(0.99)).Round(time.Microsecond))
	fmt.Fprintf(stdout, "dropped          %d (subscriber backpressure)\n", sub.Drops())
	if counts[0] < reg.Counter("server.published").Value() {
		return fmt.Errorf("verified %d of %d published messages", counts[0], reg.Counter("server.published").Value())
	}
	return nil
}

// helloReadTimeout is how long the daemon waits for a subscriber's resume
// hello before treating the connection as a legacy full-stream feed.
const helloReadTimeout = 2 * time.Second

// serveConn runs one subscriber connection: subscribe first (so live
// deliveries buffer during replay), then read the optional resume hello
// and replay catch-up from the repair retention, then forward live. Every
// write carries a deadline so a stalled TCP reader loses its connection
// instead of pinning the writer goroutine. wrap, when non-nil, decorates
// the conn (chaos fault injection).
func serveConn(srv *server.Server, conn net.Conn, reg *obs.Registry, spans *obs.SpanRing, writeTimeout time.Duration, wrap func(net.Conn) net.Conn) {
	if wrap != nil {
		conn = wrap(conn)
	}
	defer conn.Close()
	sub, err := srv.Subscribe()
	if err != nil {
		return
	}
	defer srv.Unsubscribe(sub)
	mw := transport.NewMuxFrameWriter(conn)
	mw.SetMetrics(reg)
	mw.SetSpans(spans)
	write := func(streamID uint64, p *packet.Packet) error {
		if writeTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(writeTimeout))
		}
		return mw.WritePacket(streamID, p)
	}
	_ = conn.SetReadDeadline(time.Now().Add(helloReadTimeout))
	points, herr := transport.ReadHello(conn)
	_ = conn.SetReadDeadline(time.Time{})
	if herr == nil {
		// Replay before forwarding live: duplicates across the seam are
		// possible and fine (receivers count and discard them).
		for _, pt := range points {
			for _, p := range srv.ResumeFrom(pt.StreamID, pt.From) {
				if write(pt.StreamID, p) != nil {
					return
				}
			}
		}
	}
	for d := range sub.C() {
		if write(d.StreamID, d.Packet) != nil {
			return
		}
	}
}

// acceptLoop serves subscriber conns until the listener closes; the
// returned WaitGroup tracks the per-conn goroutines.
func acceptLoop(srv *server.Server, ln net.Listener, reg *obs.Registry, spans *obs.SpanRing, writeTimeout time.Duration, wrap func(net.Conn) net.Conn) *sync.WaitGroup {
	var connWG sync.WaitGroup
	connWG.Add(1)
	go func() {
		defer connWG.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			connWG.Add(1)
			go func() {
				defer connWG.Done()
				serveConn(srv, conn, reg, spans, writeTimeout, wrap)
			}()
		}
	}()
	return &connWG
}

func runDaemon(o options, reg *obs.Registry, health *obs.Health, tel *telemetry, stdout io.Writer) error {
	srv, err := startServer(o, reg, tel)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		srv.Close()
		return err
	}
	fmt.Fprintf(stdout, "mcserved: serving %d streams on %s\n", o.streams, ln.Addr())
	health.SetReady()

	stop := make(chan struct{})
	pubs := publishAll(srv, o, stop)
	connWG := acceptLoop(srv, ln, reg, tel.spanRing(), o.writeTimeout, nil)

	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(interrupt)
	if o.duration > 0 {
		select {
		case <-interrupt:
		case <-time.After(o.duration):
		}
	} else {
		<-interrupt
	}
	health.SetDraining()
	close(stop)
	pubs.Wait()
	// Close drains, signs the final batch, and (with -checkpoint) records a
	// clean checkpoint — the flush-on-SIGTERM path.
	err = srv.Close() // closes subscriber channels -> conn writers exit
	ln.Close()
	connWG.Wait()
	tot := srv.BatchTotals()
	fmt.Fprintf(stdout, "mcserved: stopped; %d signatures over %d roots (amortization %.2fx)\n",
		tot.Signatures, tot.SignedRoots, tot.AmortizationRatio())
	return err
}

// maxReconnectBackoff caps the receiver's redial backoff.
const maxReconnectBackoff = time.Second

// receiverSession is a persistent verifying subscriber: one Demux whose
// verification state survives reconnects, a dialer with capped exponential
// backoff plus jitter, and a resume hello sent on every connect carrying
// the Demux's per-stream replay cursors. The chaos harness reuses it with
// an onAuth hook that cross-checks every authenticated payload.
type receiverSession struct {
	o    options
	reg  *obs.Registry
	tel  *telemetry
	dial func() (net.Conn, error)
	dmx  *stream.Demux
	rng  *stats.RNG
	// verifyQ, when set, is the deferred batch-verify queue shared by all
	// stream receivers; the session loop resolves it (the verdict
	// callbacks mutate verifier state, so resolution must stay on the
	// ingest goroutine).
	verifyQ *crypto.BatchVerifyQueue
	// onAuth, when set, vets every authenticated message; an error aborts
	// the session (a forged authentication made it through — fatal).
	onAuth func(streamID uint64, a stream.Authenticated) error

	packets, authed, padding int64
	reconnects               int64
	sessions                 int
}

func newReceiverSession(o options, reg *obs.Registry, tel *telemetry, addr string) (*receiverSession, error) {
	dmx, err := stream.NewDemux(func(id uint64) (*stream.Receiver, error) {
		s, err := buildScheme(o.schemeID, o.n, id, crypto.BatchCapable(crypto.NewSignerFromString(o.key)))
		if err != nil {
			return nil, err
		}
		return stream.NewReceiver(s, 64)
	}, o.streams)
	if err != nil {
		return nil, err
	}
	dmx.SetSpans(tel.spanRing())
	q, err := verifyFastPath(o, reg, dmx)
	if err != nil {
		return nil, err
	}
	return &receiverSession{
		o:       o,
		reg:     reg,
		tel:     tel,
		dial:    func() (net.Conn, error) { return net.Dial("tcp", addr) },
		dmx:     dmx,
		rng:     stats.NewRNG(uint64(time.Now().UnixNano())),
		verifyQ: q,
	}, nil
}

// run dials, verifies, and redials until stop closes, dial attempts are
// exhausted, or verification fails. A connection-level failure (reset,
// torn frame, EOF) ends the session and triggers a reconnect — never an
// error: loss is the normal operating mode of this stack.
func (rs *receiverSession) run(stop <-chan struct{}) error {
	backoff := rs.o.reconnectBackoff
	fails := 0
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		conn, err := rs.dial()
		if err != nil {
			fails++
			if rs.o.reconnect >= 0 && fails > rs.o.reconnect {
				if rs.sessions == 0 {
					return fmt.Errorf("connect %s: %w", rs.o.connect, err)
				}
				return nil
			}
			// Jittered exponential backoff: sleep backoff plus up to half
			// again, so a thundering herd of receivers spreads out.
			delay := backoff + time.Duration(rs.rng.Intn(int(backoff/2)+1))
			select {
			case <-stop:
				return nil
			case <-time.After(delay):
			}
			backoff = min(2*backoff, maxReconnectBackoff)
			continue
		}
		fails = 0
		backoff = rs.o.reconnectBackoff
		if rs.sessions > 0 {
			rs.reconnects++
			rs.reg.Counter("server.reconnects").Inc()
		}
		rs.sessions++
		if err := rs.session(conn, stop); err != nil {
			return err
		}
		if rs.o.reconnect == 0 {
			return nil // legacy single-session mode
		}
	}
}

// session runs one connection: hello with resume cursors, then verify
// until the conn dies or stop closes.
func (rs *receiverSession) session(conn net.Conn, stop <-chan struct{}) error {
	defer conn.Close()
	watcherDone := make(chan struct{})
	defer close(watcherDone)
	go func() {
		select {
		case <-stop:
			conn.Close() // unblocks the read loop
		case <-watcherDone:
		}
	}()
	points := make([]transport.ResumePoint, 0)
	for id, from := range rs.dmx.ResumePoints() {
		points = append(points, transport.ResumePoint{StreamID: id, From: from})
	}
	if err := transport.WriteHello(conn, points); err != nil {
		return nil // conn-level: reconnect
	}
	mr := transport.NewMuxFrameReader(conn)
	mr.SetMetrics(rs.reg)
	for {
		id, p, err := mr.ReadPacket()
		if err != nil {
			// EOF, reset, or torn frame: settle pending verdicts, then
			// reconnect.
			return rs.settleDeferred()
		}
		rs.packets++
		auths, err := rs.dmx.Ingest(id, p, time.Now())
		if err != nil {
			return err
		}
		if rs.verifyQ != nil {
			// Bound verdict latency: resolve at least once per queue-full
			// of packets even when enqueues trickle in below the
			// auto-resolve threshold.
			if rs.packets%int64(rs.o.verifyBatch) == 0 && rs.verifyQ.Pending() > 0 {
				rs.verifyQ.Resolve()
			}
			auths = append(auths, rs.dmx.DrainDeferred()...)
		}
		if rs.packets%sloFeedEvery == 0 {
			rs.tel.feedSLO(rs.dmx)
		}
		if err := rs.handleAuths(auths); err != nil {
			return err
		}
	}
}

// handleAuths vets and counts a batch of authenticated messages.
func (rs *receiverSession) handleAuths(auths []stream.StreamAuthenticated) error {
	for _, a := range auths {
		if rs.onAuth != nil {
			if err := rs.onAuth(a.StreamID, a.Authenticated); err != nil {
				return err
			}
		}
		if len(a.Payload) > 0 {
			rs.authed++
		} else {
			rs.padding++
		}
	}
	return nil
}

// settleDeferred resolves any still-pending deferred signature checks and
// processes the resulting authentications (end of a session: the wire went
// quiet, so nothing else will trigger a resolve).
func (rs *receiverSession) settleDeferred() error {
	// Sample the SLO at session end so the tail of a dying connection
	// (packets that will now never authenticate) burns budget promptly.
	defer rs.tel.feedSLO(rs.dmx)
	if rs.verifyQ == nil {
		return nil
	}
	if rs.verifyQ.Pending() > 0 {
		rs.verifyQ.Resolve()
	}
	return rs.handleAuths(rs.dmx.DrainDeferred())
}

func runReceiver(o options, reg *obs.Registry, tel *telemetry, stdout io.Writer) error {
	rs, err := newReceiverSession(o, reg, tel, o.connect)
	if err != nil {
		return err
	}
	stop := make(chan struct{})
	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(interrupt)
	go func() {
		<-interrupt
		close(stop)
	}()
	if err := rs.run(stop); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "mcserved receiver: %d packets, %d verified messages (+%d padding) across %d streams\n",
		rs.packets, rs.authed, rs.padding, len(rs.dmx.StreamIDs()))
	if rs.reconnects > 0 {
		fmt.Fprintf(stdout, "mcserved receiver: %d reconnects across %d sessions\n", rs.reconnects, rs.sessions)
	}
	return nil
}
