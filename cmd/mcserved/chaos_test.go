package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestServerChaosSoak runs the full chaos harness: five kill/restart
// cycles of the daemon with connection resets, torn writes, and stalled
// reads injected, against one persistent receiver that verifies every
// authenticated message. runChaos's own assertions carry the acceptance
// criteria — zero forged authentications, reconnects with resume
// catch-up, injected faults actually fired, and an authenticated
// fraction above the floor.
func TestServerChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is a multi-second wall-clock test")
	}
	var out bytes.Buffer
	err := run([]string{
		"-chaos", "-cycles", "5", "-streams", "4", "-n", "8", "-blocks", "4",
		"-rate", "300us", "-kill-after", "250ms", "-batch", "16", "-flush", "30ms",
		"-conn-reset", "0.02", "-conn-stall", "0.01", "-chaos-seed", "7",
		"-key", "test-chaos",
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "5 cycles (4 kills)") {
		t.Errorf("soak did not run 5 cycles with 4 kills:\n%s", s)
	}
}
