// Chaos self-test: the serving tier's failure model, exercised end to end
// in one process. A daemon (server + TCP listener + publishers) is killed
// and restarted for -cycles rounds against one persistent reconnecting
// receiver, while connection-level faults (resets mid-frame, torn writes,
// stalled reads) hit both sides of every subscriber conn. The kill is
// server.Kill — the in-process equivalent of SIGKILL: partial blocks and
// unsigned batch roots die, only the write-ahead checkpoint survives.
//
// The receiver cross-checks every authenticated message against the
// publishers' deterministic payload format and against everything
// previously authenticated under the same (stream, block, index)
// identity. Because restarted streams resume past their reserved
// watermark, a conflict can only mean a forged authentication or a forked
// block — either fails the run. At the end the harness asserts the run
// actually proved something: resets and reconnects happened, session
// resume replayed catch-up packets, and at least -min-auth of the
// published messages authenticated despite the kills.
package main

import (
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mcauth/internal/fault"
	"mcauth/internal/obs"
	"mcauth/internal/stream"
)

// chaosVerifier vets authenticated messages. Single-goroutine (the
// receiver session calls it inline).
type chaosVerifier struct {
	// seen maps "stream/block/index" to the authenticated payload; a
	// second authentication under the same identity must match bit for
	// bit, or some incarnation of the daemon forked a block.
	seen   map[string]string
	forged int
}

func (cv *chaosVerifier) check(streamID uint64, a stream.Authenticated) error {
	if len(a.Payload) > 0 && !strings.HasPrefix(string(a.Payload), fmt.Sprintf("stream-%d msg-", streamID)) {
		cv.forged++
		return fmt.Errorf("chaos: forged authentication on stream %d block %d index %d: %q",
			streamID, a.BlockID, a.Index, a.Payload)
	}
	key := fmt.Sprintf("%d/%d/%d", streamID, a.BlockID, a.Index)
	if prev, ok := cv.seen[key]; ok {
		if prev != string(a.Payload) {
			cv.forged++
			return fmt.Errorf("chaos: block fork: stream %d block %d index %d authenticated as both %q and %q",
				streamID, a.BlockID, a.Index, prev, a.Payload)
		}
		return nil
	}
	cv.seen[key] = string(a.Payload)
	return nil
}

func runChaos(o options, reg *obs.Registry, tel *telemetry, stdout io.Writer) error {
	if reg == nil {
		// The assertions read server.* counters, so chaos always runs with
		// a live registry (shared across daemon incarnations: counters
		// accumulate over the whole soak).
		reg = obs.NewRegistry()
		tel.bindRegistry(reg)
	}
	cpPath := o.checkpoint
	if cpPath == "" {
		dir, err := os.MkdirTemp("", "mcserved-chaos-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		cpPath = filepath.Join(dir, "checkpoint.json")
	}
	o.checkpoint = cpPath
	if o.repair <= 0 {
		return fmt.Errorf("chaos needs -repair > 0 (session resume replays from repair retention)")
	}

	// Server-side faults tear subscriber conns (reset mid-frame, partial
	// write); client-side faults stall the receiver's reads so server-side
	// write deadlines and priority shedding engage.
	srvFaults, err := fault.NewConnFaults(fault.ConnFaultConfig{
		Seed:             o.chaosSeed,
		ResetRate:        o.connReset,
		PartialWriteRate: o.connReset / 2,
	})
	if err != nil {
		return err
	}
	rcvFaults, err := fault.NewConnFaults(fault.ConnFaultConfig{
		Seed:          o.chaosSeed + 1,
		ReadStallRate: o.connStall,
		StallDelay:    20 * time.Millisecond,
	})
	if err != nil {
		return err
	}

	// One listener address for the whole soak: bind once to grab a free
	// port, then re-listen on it after every kill.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	addr := ln.Addr().String()

	// The receiver session persists across every daemon incarnation:
	// unlimited redials, and verification state that carries resume
	// cursors over the kills.
	cv := &chaosVerifier{seen: make(map[string]string)}
	ro := o
	ro.reconnect = -1
	ro.reconnectBackoff = 10 * time.Millisecond
	rs, err := newReceiverSession(ro, reg, tel, addr)
	if err != nil {
		ln.Close()
		return err
	}
	rs.onAuth = cv.check
	rs.dial = func() (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return rcvFaults.Wrap(conn), nil
	}
	recvStop := make(chan struct{})
	recvDone := make(chan error, 1)
	go func() { recvDone <- rs.run(recvStop) }()

	kills := 0
	for cycle := 0; cycle < o.cycles; cycle++ {
		if cycle > 0 {
			tel.noteFault("restart", fmt.Sprintf("cycle %d: daemon restarted from checkpoint", cycle))
		}
		if ln == nil {
			if ln, err = net.Listen("tcp", addr); err != nil {
				close(recvStop)
				<-recvDone
				return fmt.Errorf("chaos: re-listen cycle %d: %w", cycle, err)
			}
		}
		srv, err := startServer(o, reg, tel)
		if err != nil {
			ln.Close()
			close(recvStop)
			<-recvDone
			return err
		}
		connWG := acceptLoop(srv, ln, reg, tel.spanRing(), o.writeTimeout, srvFaults.Wrap)
		stopPub := make(chan struct{})
		pubs := publishAll(srv, o, stopPub)

		time.Sleep(o.killAfter)
		close(stopPub)
		pubs.Wait()
		if cycle == o.cycles-1 {
			// The final incarnation shuts down gracefully: drain, sign the
			// last batch, record a clean checkpoint.
			if err := srv.Close(); err != nil {
				ln.Close()
				close(recvStop)
				<-recvDone
				return err
			}
		} else {
			srv.Kill()
			kills++
			tel.noteFault("kill", fmt.Sprintf("cycle %d: server killed (SIGKILL-equivalent)", cycle))
		}
		ln.Close()
		connWG.Wait()
		ln = nil
	}
	// Let the receiver drain what the final graceful close put on the wire
	// before stopping it.
	time.Sleep(200 * time.Millisecond)
	close(recvStop)
	recvErr := <-recvDone
	// The soak's post-mortem: the fault timeline carries every kill and
	// restart, and the span ring holds the freshest block lifecycles from
	// both halves of the pipeline (sender and receiver share one process).
	tel.dump("chaos_kill")
	if recvErr != nil {
		return recvErr
	}

	published := reg.Counter("server.published").Value()
	catchup := reg.Counter("server.resume_catchup_packets").Value()
	reconnects := reg.Counter("server.reconnects").Value()
	shedData := reg.Counter("server.shed_data").Value()
	shedSig := reg.Counter("server.shed_sig").Value()
	fmt.Fprintf(stdout, "mcserved chaos: %d cycles (%d kills), %d published, %d authenticated (%.2f), %d padding\n",
		o.cycles, kills, published, rs.authed, float64(rs.authed)/float64(max(published, 1)), rs.padding)
	fmt.Fprintf(stdout, "  sessions %d, reconnects %d, catch-up packets %d\n", rs.sessions, reconnects, catchup)
	fmt.Fprintf(stdout, "  injected: %d resets, %d torn writes, %d read stalls; shed %d data / %d sig\n",
		srvFaults.Resets(), srvFaults.PartialWrites(), rcvFaults.Stalls(), shedData, shedSig)

	if cv.forged > 0 {
		return fmt.Errorf("chaos: %d forged authentications", cv.forged)
	}
	if rs.sessions < 2 || reconnects < 1 {
		return fmt.Errorf("chaos: receiver never reconnected (%d sessions) — the soak proved nothing", rs.sessions)
	}
	if catchup == 0 {
		return fmt.Errorf("chaos: no resume catch-up was replayed — session resume untested")
	}
	if srvFaults.Resets()+srvFaults.PartialWrites() == 0 && o.connReset > 0 {
		return fmt.Errorf("chaos: no connection faults fired — raise -kill-after or -conn-reset")
	}
	if frac := float64(rs.authed) / float64(max(published, 1)); frac < o.minAuth {
		return fmt.Errorf("chaos: authenticated fraction %.3f below -min-auth %.3f", frac, o.minAuth)
	}
	return nil
}
