// Daemon telemetry: the causal span ring, per-stream SLO tracker, and
// failure flight recorder, wired together behind the -span-buf, -slo-*
// and -flight flags. One telemetry value is shared by every role a run
// plays (daemon, receiver, chaos harness), so an in-process soak records
// both halves of each block's lifecycle into one ring and a single dump
// carries the full sender→authenticate trace.
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"mcauth/internal/obs"
	"mcauth/internal/stream"
)

// telemetry bundles the observability substrate one mcserved process
// shares across its roles. A nil *telemetry is inert: every method is a
// no-op, so call sites need no guards.
type telemetry struct {
	spans  *obs.SpanRing
	slo    *obs.SLOTracker
	flight *obs.FlightRecorder
	reg    *obs.Registry

	// flightPath, when non-empty, is where dump writes the post-mortem.
	flightPath string

	// prev holds the per-stream receiver totals already folded into the
	// SLO tracker (feedSLO goroutine only).
	prev map[uint64]stream.Totals

	// sloRedOnce arms the budget-exhaustion dump: the first red window
	// dumps, later ones don't spam.
	sloRedOnce sync.Once
}

// newTelemetry builds the substrate the options ask for, or nil when
// every telemetry feature is off.
func newTelemetry(o options, reg *obs.Registry) *telemetry {
	if o.spanBuf <= 0 && o.flight == "" && o.sloP99 <= 0 && o.sloMinAuth <= 0 {
		return nil
	}
	t := &telemetry{reg: reg, flightPath: o.flight, prev: make(map[uint64]stream.Totals)}
	if o.spanBuf > 0 {
		t.spans = obs.NewSpanRing(o.spanBuf)
		t.spans.SetEnabled(true)
	}
	// The tracker always exists so /slo always answers; without -slo-p99
	// or -slo-min-auth it reports per-stream attempts and auth fraction
	// with no objectives (and can never go red).
	t.slo = obs.NewSLOTracker(obs.SLOConfig{
		Window:          o.sloWindow,
		TimeToAuthP99:   o.sloP99,
		MinAuthFraction: o.sloMinAuth,
	})
	t.flight = obs.NewFlightRecorder(obs.FlightConfig{
		Spans:    t.spans,
		Registry: reg,
		SLO:      t.slo,
	})
	return t
}

// spanRing returns the live span ring (nil when tracing is off or t is
// nil) — safe to hand straight to SetSpans-style hooks, which are
// themselves nil-tolerant.
func (t *telemetry) spanRing() *obs.SpanRing {
	if t == nil {
		return nil
	}
	return t.spans
}

// bindRegistry late-binds a registry created after setup: chaos and demo
// build a local one when no -metrics/-pprof was given, and the flight
// recorder should snapshot it. A no-op once a registry is bound.
func (t *telemetry) bindRegistry(reg *obs.Registry) {
	if t == nil || t.reg != nil || reg == nil {
		return
	}
	t.reg = reg
	t.flight = obs.NewFlightRecorder(obs.FlightConfig{
		Spans:    t.spans,
		Registry: reg,
		SLO:      t.slo,
	})
}

// registerHTTP mounts the machine-readable /slo endpoint.
func (t *telemetry) registerHTTP(mux *http.ServeMux) {
	if t == nil || t.slo == nil || mux == nil {
		return
	}
	t.slo.Register(mux)
}

// writeStatus appends the SLO evaluation to a statusz writer.
func (t *telemetry) writeStatus(w io.Writer) {
	if t == nil || t.slo == nil {
		return
	}
	_ = t.slo.WriteText(w)
}

// noteFault records one fault event into the flight ring.
func (t *telemetry) noteFault(kind, detail string) {
	if t == nil {
		return
	}
	t.flight.NoteFault(kind, detail)
}

// dump writes the flight-recorder post-mortem to -flight (or stderr when
// no file was named), logging where it went.
func (t *telemetry) dump(reason string) {
	if t == nil || t.flight == nil {
		return
	}
	if t.flightPath == "" {
		_ = t.flight.Dump(os.Stderr, reason)
		return
	}
	if err := t.flight.DumpFile(t.flightPath, reason); err != nil {
		fmt.Fprintf(os.Stderr, "mcserved: flight dump: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "mcserved: flight dump (%s) written to %s\n", reason, t.flightPath)
}

// installSIGUSR1 arms the on-demand dump signal; the returned stop
// function removes the handler.
func (t *telemetry) installSIGUSR1() func() {
	if t == nil {
		return func() {}
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGUSR1)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-ch:
				t.noteFault("sigusr1", "operator-requested dump")
				t.dump("sigusr1")
			case <-done:
				return
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}

// recoverDump is the panic hook: deferred at the top of run, it dumps
// the flight record before re-panicking so the crash artifact survives.
func (t *telemetry) recoverDump() {
	if r := recover(); r != nil {
		t.noteFault("panic", fmt.Sprint(r))
		t.dump("panic")
		panic(r)
	}
}

// sloFeedEvery is how many ingested packets pass between SLO samples on
// the receiver loop.
const sloFeedEvery = 64

// feedSLO folds each live stream's receiver totals accrued since the
// last call into the SLO tracker as a delta sample. Attempts are
// distinct packets (duplicates excluded); every attempted packet not yet
// authenticated counts as failed — starvation under loss burns budget,
// exactly the paper's non-authenticable fraction. Must be called from
// the ingest goroutine (receiver totals are not locked).
func (t *telemetry) feedSLO(dmx *stream.Demux) {
	if t == nil || t.slo == nil || dmx == nil {
		return
	}
	for _, id := range dmx.StreamIDs() {
		r := dmx.Receiver(id)
		if r == nil {
			continue
		}
		cur := r.Totals()
		prev := t.prev[id]
		attempts := int64((cur.Packets - cur.Duplicates) - (prev.Packets - prev.Duplicates))
		if attempts <= 0 {
			continue
		}
		authed := int64(cur.Authenticated - prev.Authenticated)
		failed := attempts - authed
		if failed < 0 {
			failed = 0
		}
		t.slo.Observe(id, obs.SLOSample{
			Authenticated: authed,
			Failed:        failed,
			TimeToAuth:    cur.TimeToAuth.DeltaFrom(prev.TimeToAuth),
		})
		t.prev[id] = cur
	}
	t.slo.Export(t.reg)
	t.flight.NoteSnapshot()
	if t.slo.Red() {
		t.sloRedOnce.Do(func() {
			t.noteFault("slo_red", "error budget exhausted")
			t.dump("slo_budget_exhausted")
		})
	}
}
