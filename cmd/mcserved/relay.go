// Relay mode: a mid-tree fan-out node. The relay subscribes to an
// upstream daemon (or another relay) like any receiver, but instead of
// verifying it retains every packet in bounded per-stream repair stores
// and re-serves the feed to its own downstream subscribers — so recovery
// traffic is absorbed one hop from the edge instead of converging on the
// signer. Downstream connections speak the same protocol as against the
// daemon: an optional resume hello replayed from the relay's retention,
// plus MCRQ repair requests answered from the same store. The relay never
// needs the signing key: packets are opaque, and a relay that tampers
// with them only produces material the receivers' verifiers reject.
package main

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"mcauth/internal/obs"
	"mcauth/internal/packet"
	"mcauth/internal/stats"
	"mcauth/internal/transport"
)

// relayQueueDepth bounds each downstream subscriber's delivery queue; a
// subscriber that cannot drain it loses packets (counted), never the
// relay's upstream read loop.
const relayQueueDepth = 1 << 12

// relayDelivery is one packet queued for a downstream subscriber.
type relayDelivery struct {
	streamID uint64
	p        *packet.Packet
}

// relaySub is one downstream subscriber's queue.
type relaySub struct {
	ch chan relayDelivery
}

// relayNode holds the relay's state: per-stream repair retention, the
// high-water block mark used to resume the upstream subscription, and the
// live downstream subscriber set.
type relayNode struct {
	o    options
	reg  *obs.Registry
	tel  *telemetry
	dial func() (net.Conn, error)
	// mutate, when set (tests only), replaces every packet at ingest —
	// the poisoned-relay adversary: its store and its live forwarding both
	// serve the mutated packet.
	mutate func(streamID uint64, p *packet.Packet) *packet.Packet

	mu      sync.Mutex
	stores  map[uint64]*transport.RepairStore
	maxSeen map[uint64]uint64
	subs    map[*relaySub]struct{}

	forwarded, catchup, repairs, drops int64
	sessions, reconnects               int64
}

func newRelayNode(o options, reg *obs.Registry, tel *telemetry, upstream string) *relayNode {
	return &relayNode{
		o:       o,
		reg:     reg,
		tel:     tel,
		dial:    func() (net.Conn, error) { return net.Dial("tcp", upstream) },
		stores:  make(map[uint64]*transport.RepairStore),
		maxSeen: make(map[uint64]uint64),
		subs:    make(map[*relaySub]struct{}),
	}
}

func (rn *relayNode) count(name string, n int64) {
	if rn.reg != nil {
		rn.reg.Counter(name).Add(n)
	}
}

// runUpstream dials the upstream feed and redials with capped jittered
// backoff until stop closes or the -reconnect budget is exhausted — the
// same contract as the receiver session, because from upstream's point of
// view the relay is just another subscriber.
func (rn *relayNode) runUpstream(stop <-chan struct{}) error {
	backoff := rn.o.reconnectBackoff
	rng := stats.NewRNG(uint64(time.Now().UnixNano()))
	fails := 0
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		conn, err := rn.dial()
		if err != nil {
			fails++
			if rn.o.reconnect >= 0 && fails > rn.o.reconnect {
				if rn.sessions == 0 {
					return fmt.Errorf("relay upstream %s: %w", rn.o.connect, err)
				}
				return nil
			}
			delay := backoff + time.Duration(rng.Intn(int(backoff/2)+1))
			select {
			case <-stop:
				return nil
			case <-time.After(delay):
			}
			backoff = min(2*backoff, maxReconnectBackoff)
			continue
		}
		fails = 0
		backoff = rn.o.reconnectBackoff
		if rn.sessions > 0 {
			rn.reconnects++
			rn.count("relay.reconnects", 1)
		}
		rn.sessions++
		rn.upstreamSession(conn, stop)
		if rn.o.reconnect == 0 {
			return nil
		}
	}
}

// upstreamSession runs one upstream connection: a resume hello carrying
// the relay's per-stream high-water marks (From 0 on a cold store, so a
// freshly restarted relay refills its retention from the daemon's), then
// ingest until the conn dies or stop closes.
func (rn *relayNode) upstreamSession(conn net.Conn, stop <-chan struct{}) {
	defer conn.Close()
	watcherDone := make(chan struct{})
	defer close(watcherDone)
	go func() {
		select {
		case <-stop:
			conn.Close()
		case <-watcherDone:
		}
	}()
	points := make([]transport.ResumePoint, 0, rn.o.streams)
	rn.mu.Lock()
	for id := uint64(1); id <= uint64(rn.o.streams); id++ {
		var from uint64
		if seen, ok := rn.maxSeen[id]; ok {
			from = seen + 1
		}
		points = append(points, transport.ResumePoint{StreamID: id, From: from})
	}
	rn.mu.Unlock()
	if err := transport.WriteHello(conn, points); err != nil {
		return
	}
	mr := transport.NewMuxFrameReader(conn)
	mr.SetMetrics(rn.reg)
	for {
		id, p, err := mr.ReadPacket()
		if err != nil {
			return
		}
		rn.ingest(id, p)
	}
}

// ingest stores one upstream packet in the stream's repair retention and
// fans it out to every downstream subscriber. Duplicates across a resume
// seam are detected by (block, index) and kept out of the store but still
// forwarded — downstream receivers discard them, and a restarted
// downstream may need exactly those.
func (rn *relayNode) ingest(streamID uint64, p *packet.Packet) {
	if rn.mutate != nil {
		p = rn.mutate(streamID, p)
	}
	rn.mu.Lock()
	st := rn.stores[streamID]
	if st == nil && rn.o.repair > 0 {
		st, _ = transport.NewRepairStore(rn.o.repair)
		rn.stores[streamID] = st
	}
	if seen, ok := rn.maxSeen[streamID]; !ok || p.BlockID > seen {
		rn.maxSeen[streamID] = p.BlockID
	}
	subs := make([]*relaySub, 0, len(rn.subs))
	for sub := range rn.subs {
		subs = append(subs, sub)
	}
	rn.mu.Unlock()
	if st != nil && len(st.Packets(p.BlockID, p.Index)) == 0 {
		st.Add(p.BlockID, []*packet.Packet{p})
	}
	rn.forwarded++
	rn.count("relay.forwarded", 1)
	d := relayDelivery{streamID: streamID, p: p}
	for _, sub := range subs {
		select {
		case sub.ch <- d:
		default:
			rn.drops++
			rn.count("relay.drops", 1)
		}
	}
}

func (rn *relayNode) subscribe() *relaySub {
	sub := &relaySub{ch: make(chan relayDelivery, relayQueueDepth)}
	rn.mu.Lock()
	rn.subs[sub] = struct{}{}
	rn.mu.Unlock()
	return sub
}

func (rn *relayNode) unsubscribe(sub *relaySub) {
	rn.mu.Lock()
	delete(rn.subs, sub)
	rn.mu.Unlock()
}

// retained returns the stream's replayable packets from block from on.
func (rn *relayNode) retained(streamID, from uint64) []*packet.Packet {
	rn.mu.Lock()
	st := rn.stores[streamID]
	rn.mu.Unlock()
	if st == nil {
		return nil
	}
	return st.Since(from)
}

// repairPackets answers one MCRQ request from the stream's store.
func (rn *relayNode) repairPackets(req transport.RepairRequest) []*packet.Packet {
	rn.mu.Lock()
	st := rn.stores[req.StreamID]
	rn.mu.Unlock()
	if st == nil {
		return nil
	}
	return st.Packets(req.BlockID, req.Index)
}

// serveConn runs one downstream subscriber: live forwarding from the
// subscriber queue, with a concurrent control reader answering resume
// hellos (replay from retention) and MCRQ repair requests from the same
// connection. All writes share one mutex and carry the write deadline, so
// a stalled downstream reader loses its conn instead of pinning the
// relay.
func (rn *relayNode) serveConn(conn net.Conn, stop <-chan struct{}) {
	sub := rn.subscribe()
	defer rn.unsubscribe(sub)
	mw := transport.NewMuxFrameWriter(conn)
	mw.SetMetrics(rn.reg)
	var wmu sync.Mutex
	write := func(streamID uint64, p *packet.Packet) error {
		wmu.Lock()
		defer wmu.Unlock()
		if rn.o.writeTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(rn.o.writeTimeout))
		}
		return mw.WritePacket(streamID, p)
	}
	ctlDone := make(chan struct{})
	// Closing the conn unblocks the control reader; joining it keeps every
	// per-conn goroutine inside the accept loop's WaitGroup.
	defer func() {
		conn.Close()
		<-ctlDone
	}()
	go func() {
		defer close(ctlDone)
		defer conn.Close() // control-plane death ends the whole session
		for {
			cf, err := transport.ReadControlFrame(conn)
			if err != nil {
				return
			}
			if cf.IsHello {
				for _, pt := range cf.Hello {
					for _, p := range rn.retained(pt.StreamID, pt.From) {
						if write(pt.StreamID, p) != nil {
							return
						}
						rn.catchup++
						rn.count("relay.catchup_served", 1)
					}
				}
				continue
			}
			for _, p := range rn.repairPackets(cf.Repair) {
				if write(cf.Repair.StreamID, p) != nil {
					return
				}
				rn.repairs++
				rn.count("relay.repairs_served", 1)
			}
		}
	}()
	for {
		select {
		case <-stop:
			return
		case <-ctlDone:
			return
		case d := <-sub.ch:
			if write(d.streamID, d.p) != nil {
				return
			}
		}
	}
}

// relayAcceptLoop serves downstream conns until the listener closes.
func (rn *relayNode) acceptLoop(ln net.Listener, stop <-chan struct{}) *sync.WaitGroup {
	var connWG sync.WaitGroup
	connWG.Add(1)
	go func() {
		defer connWG.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			connWG.Add(1)
			go func() {
				defer connWG.Done()
				rn.serveConn(conn, stop)
			}()
		}
	}()
	return &connWG
}

func (rn *relayNode) summary(w io.Writer) {
	fmt.Fprintf(w, "mcserved relay: forwarded %d packets, served %d catch-up + %d repairs, %d reconnects, %d queue drops\n",
		rn.forwarded, rn.catchup, rn.repairs, rn.reconnects, rn.drops)
}

func runRelay(o options, reg *obs.Registry, tel *telemetry, stdout io.Writer) error {
	if o.repair <= 0 {
		return errors.New("relay needs -repair > 0 (it exists to serve catch-up and repairs from retention)")
	}
	if reg == nil {
		reg = obs.NewRegistry()
		tel.bindRegistry(reg)
	}
	rn := newRelayNode(o, reg, tel, o.connect)
	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "mcserved relay: %s -> serving on %s (%d streams)\n", o.connect, ln.Addr(), o.streams)

	stop := make(chan struct{})
	connWG := rn.acceptLoop(ln, stop)
	upDone := make(chan error, 1)
	go func() { upDone <- rn.runUpstream(stop) }()

	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(interrupt)
	var timeout <-chan time.Time
	if o.duration > 0 {
		timeout = time.After(o.duration)
	}
	var upErr error
	select {
	case <-interrupt:
	case <-timeout:
	case upErr = <-upDone:
		// Upstream gave up (reconnect budget exhausted): drain and exit.
		upDone = nil
	}
	close(stop)
	ln.Close()
	connWG.Wait()
	if upDone != nil {
		upErr = <-upDone
	}
	rn.summary(stdout)
	return upErr
}
