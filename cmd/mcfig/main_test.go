package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"mcauth/internal/obs"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleFigure(t *testing.T) {
	if err := run([]string{"-fig", "fig9"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-fig", "nope"}, io.Discard); err == nil {
		t.Error("unknown figure should fail")
	}
	if err := run(nil, io.Discard); err == nil {
		t.Error("no mode should fail")
	}
	if err := run([]string{"-bogus"}, io.Discard); err == nil {
		t.Error("unknown flag should fail")
	}
}

// TestObservabilityOutputs checks -trace/-metrics parity with mcsim: a
// figure regeneration writes a decodable JSONL trace and a metrics JSON
// that agree on how many packets the sweeps simulated.
func TestObservabilityOutputs(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "fig.jsonl")
	metricsPath := filepath.Join(dir, "fig-metrics.json")
	if err := run([]string{"-fig", "latejoin", "-trace", tracePath, "-metrics", metricsPath}, io.Discard); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, skipped, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("trace has %d undecodable lines", skipped)
	}
	var sent int64
	for _, e := range events {
		if e.Type == obs.EventSent {
			sent++
		}
	}
	if sent == 0 {
		t.Fatal("trace has no sent events")
	}
	raw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	if got := snap.Counters["netsim.sent"]; got != sent {
		t.Errorf("netsim.sent = %d, trace has %d sent events", got, sent)
	}
	if snap.Counters["crypto.verify_ops"] <= 0 {
		t.Error("crypto.verify_ops missing from metrics")
	}
}

func TestUnwritableOutputsFail(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "out")
	for _, flagName := range []string{"-trace", "-metrics"} {
		if err := run([]string{"-fig", "latejoin", flagName, bad}, io.Discard); err == nil {
			t.Errorf("%s %s should fail", flagName, bad)
		}
	}
}
