package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleFigure(t *testing.T) {
	if err := run([]string{"-fig", "fig9"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-fig", "nope"}); err == nil {
		t.Error("unknown figure should fail")
	}
	if err := run(nil); err == nil {
		t.Error("no mode should fail")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag should fail")
	}
}
