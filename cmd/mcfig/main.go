// Command mcfig regenerates the paper's figures and this repository's
// extension experiments as text tables.
//
// Usage:
//
//	mcfig -list
//	mcfig -fig fig8
//	mcfig -all
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mcauth/internal/crypto"
	"mcauth/internal/experiments"
	"mcauth/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mcfig:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mcfig", flag.ContinueOnError)
	var (
		figID      = fs.String("fig", "", "experiment ID to run (see -list)")
		listAll    = fs.Bool("list", false, "list available experiments")
		runAll     = fs.Bool("all", false, "run every experiment")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file at exit")
		workers    = fs.Int("workers", 0, "worker pool size for sweep evaluation (0 = GOMAXPROCS); results are identical for any setting")
		trace      = fs.String("trace", "", "write a JSONL packet-lifecycle trace of every simulation run to this file")
		metrics    = fs.String("metrics", "", "write figure-wide metrics: '-' for a text table on stdout, else JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("-workers %d must be >= 0", *workers)
	}
	experiments.Workers = *workers
	var metricsFile *os.File
	var tracer *obs.JSONLTracer
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			return fmt.Errorf("trace output unwritable: %w", err)
		}
		tracer = obs.NewJSONLTracer(f)
		experiments.Tracer = tracer
		defer func() { experiments.Tracer = nil }()
	}
	if *metrics != "" {
		if *metrics != "-" {
			f, err := os.Create(*metrics)
			if err != nil {
				return fmt.Errorf("metrics output unwritable: %w", err)
			}
			metricsFile = f
		}
		experiments.Metrics = obs.NewRegistry()
		crypto.Instrument(experiments.Metrics)
		defer func() {
			crypto.Uninstrument()
			experiments.Metrics = nil
		}()
	}
	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	if err := dispatch(*figID, *listAll, *runAll, stdout); err != nil {
		stopProfiles()
		return err
	}
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			return fmt.Errorf("trace output: %w", err)
		}
	}
	if reg := experiments.Metrics; reg != nil {
		snap := reg.Snapshot()
		if metricsFile != nil {
			if err := snap.WriteJSON(metricsFile); err != nil {
				metricsFile.Close()
				return fmt.Errorf("metrics output: %w", err)
			}
			if err := metricsFile.Close(); err != nil {
				return fmt.Errorf("metrics output: %w", err)
			}
		} else {
			fmt.Fprintln(stdout)
			if err := snap.WriteText(stdout); err != nil {
				return err
			}
		}
	}
	return stopProfiles()
}

func dispatch(figID string, listAll, runAll bool, out io.Writer) error {
	switch {
	case listAll:
		for _, e := range experiments.All() {
			fmt.Fprintf(out, "%-10s %s\n", e.ID, e.Title)
		}
		return nil
	case runAll:
		return experiments.RunAll(out)
	case figID != "":
		e, ok := experiments.Get(figID)
		if !ok {
			return fmt.Errorf("unknown experiment %q; available: %s",
				figID, strings.Join(experiments.IDs(), ", "))
		}
		return e.Run(out)
	default:
		return errors.New("one of -fig, -all or -list is required")
	}
}
