// Command mcfig regenerates the paper's figures and this repository's
// extension experiments as text tables.
//
// Usage:
//
//	mcfig -list
//	mcfig -fig fig8
//	mcfig -all
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"mcauth/internal/experiments"
	"mcauth/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mcfig:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mcfig", flag.ContinueOnError)
	var (
		figID      = fs.String("fig", "", "experiment ID to run (see -list)")
		listAll    = fs.Bool("list", false, "list available experiments")
		runAll     = fs.Bool("all", false, "run every experiment")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file at exit")
		workers    = fs.Int("workers", 0, "worker pool size for sweep evaluation (0 = GOMAXPROCS); results are identical for any setting")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("-workers %d must be >= 0", *workers)
	}
	experiments.Workers = *workers
	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	if err := dispatch(*figID, *listAll, *runAll); err != nil {
		stopProfiles()
		return err
	}
	return stopProfiles()
}

func dispatch(figID string, listAll, runAll bool) error {
	switch {
	case listAll:
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return nil
	case runAll:
		return experiments.RunAll(os.Stdout)
	case figID != "":
		e, ok := experiments.Get(figID)
		if !ok {
			return fmt.Errorf("unknown experiment %q; available: %s",
				figID, strings.Join(experiments.IDs(), ", "))
		}
		return e.Run(os.Stdout)
	default:
		return errors.New("one of -fig, -all or -list is required")
	}
}
