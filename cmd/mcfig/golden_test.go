package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// goldenFigures are the analytically-driven figures pinned byte-for-byte:
// fast to regenerate, fully deterministic, and together covering the
// TESLA evaluator (fig3), the cross-scheme comparison (fig8), the
// wire-format overhead measurement (fig10), and the recurrence-vs-exact
// gap study (markovgap).
var goldenFigures = []string{"fig3", "fig8", "fig10", "markovgap"}

// figOutput regenerates one figure with the given worker-pool size.
func figOutput(t *testing.T, fig string, workers int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := run([]string{"-fig", fig, "-workers", strconv.Itoa(workers)}, &buf); err != nil {
		t.Fatalf("%s: %v", fig, err)
	}
	return buf.Bytes()
}

// TestGoldenFigures pins figure output against testdata/ golden files.
// Regenerate with: go test ./cmd/mcfig -run TestGoldenFigures -update
func TestGoldenFigures(t *testing.T) {
	for _, fig := range goldenFigures {
		fig := fig
		t.Run(fig, func(t *testing.T) {
			got := figOutput(t, fig, 1)
			golden := filepath.Join("testdata", fig+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s output drifted from %s;\nrerun with -update if the change is intended.\n--- got ---\n%s\n--- want ---\n%s",
					fig, golden, got, want)
			}
		})
	}
}

// TestGoldenFiguresWorkerInvariant is the determinism guarantee behind
// the golden files: the sweep output must be byte-identical for any
// worker-pool size.
func TestGoldenFiguresWorkerInvariant(t *testing.T) {
	for _, fig := range goldenFigures {
		one := figOutput(t, fig, 1)
		four := figOutput(t, fig, 4)
		if !bytes.Equal(one, four) {
			t.Errorf("%s: output differs between -workers 1 and -workers 4", fig)
		}
	}
}
