package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mcauth/internal/obs"
)

// writeFlightFixture builds a deterministic flight dump: a fixed clock,
// one complete block lifecycle plus one that dies at the mux, a fault
// timeline, and an SLO evaluation fed with a fixed outcome mix.
func writeFlightFixture(t *testing.T, path string) {
	t.Helper()
	base := time.Unix(1_700_000_000, 0)
	now := base
	clock := func() time.Time { return now }

	ring := obs.NewSpanRing(64)
	ring.SetEnabled(true)
	stamp := func(kind obs.SpanKind, stream, block uint64, index uint32, at time.Duration, dur time.Duration, reason string) {
		ring.Record(obs.Span{
			Kind: kind, Stream: stream, Block: block, Index: index,
			TimeNS: base.Add(at).UnixNano(), DurNS: dur.Nanoseconds(), Reason: reason,
		})
	}
	// Block 9 on stream 2: the full sender->authenticate path.
	stamp(obs.SpanPush, 2, 9, 0, 0, 0, "")
	stamp(obs.SpanShardEnqueue, 2, 9, 0, 10*time.Microsecond, 0, "")
	stamp(obs.SpanSignAttach, 2, 9, 0, 900*time.Microsecond, 890*time.Microsecond, "")
	stamp(obs.SpanMuxWrite, 2, 9, 1, time.Millisecond, 0, "")
	stamp(obs.SpanDecode, 2, 9, 1, 2*time.Millisecond, 0, "")
	stamp(obs.SpanDeferredPark, 2, 9, 1, 2100*time.Microsecond, 0, "")
	stamp(obs.SpanSigResolve, 2, 9, 1, 3*time.Millisecond, 0, "")
	stamp(obs.SpanAuthenticate, 2, 9, 1, 3100*time.Microsecond, 1100*time.Microsecond, "")
	// Block 10 on stream 2 dies on the wire: written, never decoded.
	stamp(obs.SpanPush, 2, 10, 0, 4*time.Millisecond, 0, "")
	stamp(obs.SpanShardEnqueue, 2, 10, 0, 4010*time.Microsecond, 0, "")
	stamp(obs.SpanMuxWrite, 2, 10, 1, 5*time.Millisecond, 0, "")
	// Block 11 on stream 3 is rejected at the receiver.
	stamp(obs.SpanDecode, 3, 11, 2, 6*time.Millisecond, 0, "")
	stamp(obs.SpanReject, 3, 11, 2, 6100*time.Microsecond, 0, "digest_mismatch")

	slo := obs.NewSLOTracker(obs.SLOConfig{
		Window:          10 * time.Second,
		MinAuthFraction: 0.9,
		MinSample:       10,
		Clock:           clock,
	})
	var h obs.HistogramData
	slo.Observe(2, obs.SLOSample{Authenticated: 40, Failed: 60, TimeToAuth: h})

	fr := obs.NewFlightRecorder(obs.FlightConfig{Spans: ring, SLO: slo, Clock: clock})
	now = base.Add(7 * time.Millisecond)
	fr.NoteFault("kill", "cycle 0: server killed (SIGKILL-equivalent)")
	now = base.Add(8 * time.Millisecond)
	fr.NoteFault("restart", "cycle 1: daemon restarted from checkpoint")
	now = base.Add(9 * time.Millisecond)
	if err := fr.DumpFile(path, "chaos_kill"); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenFlightReport pins the post-mortem rendering of a fixed dump
// byte-for-byte. Regenerate with:
// go test ./cmd/mcreport -run TestGoldenFlightReport -update
func TestGoldenFlightReport(t *testing.T) {
	dump := filepath.Join(t.TempDir(), "flight.jsonl")
	writeFlightFixture(t, dump)
	got, err := capture(t, func() error { return run([]string{"-flight", dump}) })
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "flight_report.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal([]byte(got), want) {
		t.Errorf("flight report drifted from %s;\nrerun with -update if the change is intended.\n--- got ---\n%s\n--- want ---\n%s",
			golden, got, want)
	}
}

// TestFlightReportContent spot-checks the post-mortem's load-bearing
// facts without pinning bytes: the trigger, the fault timeline, the red
// SLO, and the complete-lifecycle count.
func TestFlightReportContent(t *testing.T) {
	dump := filepath.Join(t.TempDir(), "flight.jsonl")
	writeFlightFixture(t, dump)
	out, err := capture(t, func() error { return run([]string{"-flight", dump}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"reason    chaos_kill",
		"kill       cycle 0",
		"restart    cycle 1",
		"auth_fraction red",
		"traces: 3 (complete sender->authenticate: 1)",
		"[complete]",
		"reason=digest_mismatch",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("post-mortem missing %q\n--- output ---\n%s", want, out)
		}
	}
}

// TestSeriesSkippedSurfaced checks that -series reports both the parsed
// snapshot count and how many lines ReadSnapshotLines skipped.
func TestSeriesSkippedSurfaced(t *testing.T) {
	path := filepath.Join(t.TempDir(), "series.jsonl")
	reg := obs.NewRegistry()
	reg.Counter("x").Inc()
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		ts := obs.TimedSnapshot{AtUnixNS: int64(1_700_000_000_000_000_000 + i), Metrics: reg.Snapshot()}
		if err := ts.WriteJSONLine(&buf); err != nil {
			t.Fatal(err)
		}
	}
	buf.WriteString("not json at all\n")
	buf.WriteString(`{"type":"span","kind":"push"}` + "\n")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error { return run([]string{"-series", path}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "3 snapshot(s), 2 skipped line(s)") {
		t.Errorf("series summary missing counts:\n%s", out)
	}
	if !strings.Contains(out, "warning: 2 line(s)") {
		t.Errorf("series summary missing skipped warning:\n%s", out)
	}
}

// TestFlightRejectsNonDump checks that pointing -flight at a plain trace
// fails loudly instead of rendering an empty post-mortem.
func TestFlightRejectsNonDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-dump.jsonl")
	if err := os.WriteFile(path, []byte(`{"type":"span","kind":"push","stream":1,"block":2}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, func() error { return run([]string{"-flight", path}) }); err == nil {
		t.Fatal("expected an error for a span-only stream with no flight_meta")
	}
}
