package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/delay"
	"mcauth/internal/diagnose"
	"mcauth/internal/loss"
	"mcauth/internal/netsim"
	"mcauth/internal/obs"
	"mcauth/internal/scheme/emss"
)

// writeTrace simulates one lossy EMSS block and saves its JSONL trace,
// exactly as `mcsim -trace` would.
func writeTrace(t *testing.T, path string, seed uint64) {
	t.Helper()
	const n = 20
	signer := crypto.NewSignerFromString("mcreport-test")
	s, err := emss.New(emss.Config{N: n, M: 2, D: 1}, signer)
	if err != nil {
		t.Fatal(err)
	}
	model, err := loss.NewBernoulli(0.25)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewJSONLTracer(f)
	payloads := make([][]byte, n)
	for i := range payloads {
		payloads[i] = []byte("payload")
	}
	cfg := netsim.Config{
		Receivers:       10,
		Loss:            model,
		Delay:           delay.Constant{D: time.Millisecond},
		SendInterval:    5 * time.Millisecond,
		Start:           time.Unix(0, 0),
		Seed:            seed,
		ReliableIndices: []uint32{n},
		Tracer:          tracer,
	}
	if _, err := netsim.Run(s, cfg, 1, payloads); err != nil {
		t.Fatal(err)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
}

// capture runs f with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), ferr
}

// TestDiffIdenticalSeeds is the determinism acceptance check: two traces of
// the same seed diagnose to byte-identical reports, so -diff prints nothing
// and succeeds.
func TestDiffIdenticalSeeds(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	writeTrace(t, a, 7)
	writeTrace(t, b, 7)
	out, err := capture(t, func() error {
		return run([]string{"-scheme", "emss", "-n", "20", "-diff", a, b})
	})
	if err != nil {
		t.Fatal(err)
	}
	if out != "" {
		t.Errorf("diff of identical-seed runs not empty:\n%s", out)
	}
}

// TestDiffDetectsChange: different seeds change receive patterns, so the
// diff is non-empty and the command fails like diff(1) does.
func TestDiffDetectsChange(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	writeTrace(t, a, 7)
	writeTrace(t, b, 8)
	out, err := capture(t, func() error {
		return run([]string{"-scheme", "emss", "-n", "20", "-diff", a, b})
	})
	if err == nil {
		t.Error("diff of different seeds should fail")
	}
	if out == "" {
		t.Error("diff of different seeds printed nothing")
	}
}

// TestReportOutputs renders one trace in all three formats and checks the
// JSON half against the diagnose invariants.
func TestReportOutputs(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "run.jsonl")
	writeTrace(t, trace, 3)
	jsonPath := filepath.Join(dir, "rep.json")
	mdPath := filepath.Join(dir, "rep.md")
	out, err := capture(t, func() error {
		return run([]string{
			"-scheme", "emss", "-n", "20",
			"-json", jsonPath, "-md", mdPath, trace,
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "root causes") {
		t.Errorf("text report missing cause section:\n%s", out)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep diagnose.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report JSON: %v", err)
	}
	if rep.Scheme == "" || rep.WireCount != 20 || rep.Receivers != 10 {
		t.Errorf("run_meta not joined in: scheme=%q wire=%d receivers=%d",
			rep.Scheme, rep.WireCount, rep.Receivers)
	}
	var causeTotal int
	for _, c := range rep.Causes {
		causeTotal += c
	}
	if causeTotal != rep.Unauthenticated {
		t.Errorf("causes sum to %d, want unauthenticated = %d", causeTotal, rep.Unauthenticated)
	}
	md, err := os.ReadFile(mdPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "| Cause | Count |") {
		t.Error("markdown report missing cause table")
	}
}

// TestGraphlessReportStillClassifies: without -scheme there is no culprit
// attribution, but every failure still gets exactly one cause.
func TestGraphlessReportStillClassifies(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "run.jsonl")
	writeTrace(t, trace, 4)
	jsonPath := filepath.Join(dir, "rep.json")
	if _, err := capture(t, func() error {
		return run([]string{"-json", jsonPath, trace})
	}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep diagnose.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Diagnoses) != rep.Unauthenticated {
		t.Errorf("%d diagnoses, want %d", len(rep.Diagnoses), rep.Unauthenticated)
	}
	for _, d := range rep.Diagnoses {
		if len(d.Culprits) != 0 {
			t.Errorf("culprits named without a graph: %+v", d)
		}
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "run.jsonl")
	writeTrace(t, trace, 5)
	if err := run([]string{}); err == nil {
		t.Error("no trace file should fail")
	}
	if err := run([]string{"-diff", trace}); err == nil {
		t.Error("-diff with one file should fail")
	}
	if err := run([]string{"-scheme", "nope", trace}); err == nil {
		t.Error("unknown scheme should fail")
	}
	if err := run([]string{filepath.Join(dir, "missing.jsonl")}); err == nil {
		t.Error("missing trace should fail")
	}
}
