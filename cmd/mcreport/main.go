// Command mcreport turns a saved packet-lifecycle trace (mcsim -trace, or
// any internal/obs JSONL stream) into a root-cause diagnosis report, offline.
// It can also diff the reports of two traces — two identical-seed runs
// produce byte-identical reports, so the diff of a healthy rerun is empty.
//
// Usage:
//
//	mcreport run.jsonl                         # text report on stdout
//	mcreport -json rep.json -md rep.md run.jsonl
//	mcreport -scheme emss -n 100 -m 2 -d 1 run.jsonl   # + culprit attribution
//	mcreport -diff a.jsonl b.jsonl             # empty output = identical
//
// The scheme flags rebuild the dependence graph so hash-path-cut diagnoses
// carry their frontier-cut culprit sets; without them the report still
// classifies every failure but names no culprits. Scheme, wire count, and
// root index come from the trace's run_meta event.
package main

import (
	"flag"
	"fmt"
	"os"

	"mcauth/internal/crypto"
	"mcauth/internal/diagnose"
	"mcauth/internal/obs"
	"mcauth/internal/scheme"
	"mcauth/internal/scheme/augchain"
	"mcauth/internal/scheme/authtree"
	"mcauth/internal/scheme/emss"
	"mcauth/internal/scheme/rohatgi"
	"mcauth/internal/scheme/signeach"
	"mcauth/internal/scheme/tesla"
)

type options struct {
	scheme  string
	n       int
	m, d    int
	a, b    int
	lag     int
	jsonOut string
	mdOut   string
	diff    bool
	flight  string
	series  string
	args    []string
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mcreport:", err)
		os.Exit(1)
	}
}

func parseOptions(args []string) (options, error) {
	fs := flag.NewFlagSet("mcreport", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.scheme, "scheme", "", "rebuild this scheme's dependence graph for culprit attribution: rohatgi|emss|augchain|authtree|signeach|tesla")
	fs.IntVar(&o.n, "n", 100, "block size the trace was produced with")
	fs.IntVar(&o.m, "m", 2, "EMSS m")
	fs.IntVar(&o.d, "d", 1, "EMSS d")
	fs.IntVar(&o.a, "a", 3, "augmented chain a")
	fs.IntVar(&o.b, "b", 3, "augmented chain b")
	fs.IntVar(&o.lag, "lag", 4, "TESLA disclosure lag (intervals)")
	fs.StringVar(&o.jsonOut, "json", "", "also write the report as JSON to this file")
	fs.StringVar(&o.mdOut, "md", "", "also write the report as markdown to this file")
	fs.BoolVar(&o.diff, "diff", false, "diff the reports of two traces instead of printing one")
	fs.StringVar(&o.flight, "flight", "", "render an mcserved flight-recorder dump (JSONL) as a human-readable post-mortem")
	fs.StringVar(&o.series, "series", "", "summarize an mcserved -metrics-interval JSONL series (snapshot count, time span, skipped lines)")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	o.args = fs.Args()
	return o, nil
}

// buildOptions rebuilds the graph-side half of the trace→graph join from
// the -scheme flags. The TESLA graph's split vertex encoding has no sound
// wire-index mapping, so tesla restricts the diagnosis scope to its data
// packets and skips culprit attribution.
func buildOptions(o options) (diagnose.Options, error) {
	var opts diagnose.Options
	if o.scheme == "" {
		return opts, nil
	}
	signer := crypto.NewSignerFromString("mcreport")
	var s scheme.Scheme
	var err error
	switch o.scheme {
	case "rohatgi":
		s, err = rohatgi.New(o.n, signer)
	case "emss":
		s, err = emss.New(emss.Config{N: o.n, M: o.m, D: o.d}, signer)
	case "augchain":
		s, err = augchain.New(augchain.Config{N: o.n, A: o.a, B: o.b}, signer)
	case "authtree":
		s, err = authtree.New(o.n, signer)
	case "signeach":
		s, err = signeach.New(o.n, signer)
	case "tesla":
		indices := make([]uint32, o.n)
		for i := range indices {
			indices[i] = tesla.DataWireIndex(i + 1)
		}
		opts.DataIndices = indices
		return opts, nil
	default:
		return opts, fmt.Errorf("unknown scheme %q", o.scheme)
	}
	if err != nil {
		return opts, err
	}
	indices := make([]uint32, o.n)
	for i := range indices {
		indices[i] = uint32(i + 1)
	}
	opts.DataIndices = indices
	if vm, ok := s.(scheme.VertexMapper); ok {
		g, err := s.Graph()
		if err != nil {
			return opts, err
		}
		opts.Graph = g
		opts.VertexOf = vm.VertexOf
	}
	return opts, nil
}

func loadReport(path string, opts diagnose.Options) (*diagnose.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, skipped, err := obs.ReadJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	rep, err := diagnose.BuildReport(events, skipped, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func run(args []string) error {
	o, err := parseOptions(args)
	if err != nil {
		return err
	}
	if o.flight != "" {
		return runFlight(o.flight)
	}
	if o.series != "" {
		return runSeries(o.series)
	}
	opts, err := buildOptions(o)
	if err != nil {
		return err
	}
	if o.diff {
		if len(o.args) != 2 {
			return fmt.Errorf("-diff needs exactly two trace files, got %d", len(o.args))
		}
		a, err := loadReport(o.args[0], opts)
		if err != nil {
			return err
		}
		b, err := loadReport(o.args[1], opts)
		if err != nil {
			return err
		}
		lines := diagnose.Diff(a, b)
		for _, l := range lines {
			fmt.Println(l)
		}
		if len(lines) > 0 {
			return fmt.Errorf("%d difference(s)", len(lines))
		}
		return nil
	}
	if len(o.args) != 1 {
		return fmt.Errorf("need exactly one trace file, got %d", len(o.args))
	}
	rep, err := loadReport(o.args[0], opts)
	if err != nil {
		return err
	}
	if o.jsonOut != "" {
		f, err := os.Create(o.jsonOut)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if o.mdOut != "" {
		f, err := os.Create(o.mdOut)
		if err != nil {
			return err
		}
		if err := rep.WriteMarkdown(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return rep.WriteText(os.Stdout)
}
