package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// TestGoldenMarkdownReport pins the markdown rendering of a fixed-seed
// trace byte-for-byte. The trace itself is regenerated on every run (it
// is deterministic for a given seed), so the golden file captures only
// the diagnosis and rendering layers — a drift means BuildReport or
// WriteMarkdown changed behavior.
// Regenerate with: go test ./cmd/mcreport -run TestGoldenMarkdownReport -update
func TestGoldenMarkdownReport(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "run.jsonl")
	writeTrace(t, trace, 7)
	mdPath := filepath.Join(dir, "rep.md")
	if _, err := capture(t, func() error {
		return run([]string{"-scheme", "emss", "-n", "20", "-md", mdPath, trace})
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(mdPath)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report.golden.md")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("markdown report drifted from %s;\nrerun with -update if the change is intended.\n--- got ---\n%s\n--- want ---\n%s",
			golden, got, want)
	}
}

// TestGoldenTextReportStable renders the same trace twice and demands
// byte-identical text output — the property the -diff mode relies on.
func TestGoldenTextReportStable(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "run.jsonl")
	writeTrace(t, trace, 7)
	var outs [2]string
	for i := range outs {
		out, err := capture(t, func() error {
			return run([]string{"-scheme", "emss", "-n", "20", trace})
		})
		if err != nil {
			t.Fatal(err)
		}
		outs[i] = out
	}
	if outs[0] != outs[1] {
		t.Error("text report not stable across identical renders")
	}
}
