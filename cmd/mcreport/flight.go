// Flight-recorder post-mortems and metrics-series summaries: the offline
// renderers for mcserved's -flight dumps and -metrics-interval JSONL
// series. A dump is rendered as an incident report — what triggered it,
// the fault timeline leading up to it, the per-stream SLO budget state at
// the moment of death, and the causally grouped block lifecycles the span
// ring still held (sender push through receiver authenticate/reject).
package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"mcauth/internal/obs"
)

// spanKindOrder ranks lifecycle stages in pipeline order so a trace's
// spans render sender-to-receiver even when timestamps tie.
var spanKindOrder = map[obs.SpanKind]int{
	obs.SpanPush:         0,
	obs.SpanShardEnqueue: 1,
	obs.SpanSignAttach:   2,
	obs.SpanMuxWrite:     3,
	obs.SpanDecode:       4,
	obs.SpanDeferredPark: 5,
	obs.SpanSigResolve:   6,
	obs.SpanAuthenticate: 7,
	obs.SpanReject:       8,
}

// traceGroup is one block's causally linked spans.
type traceGroup struct {
	trace   uint64
	stream  uint64
	block   uint64
	firstNS int64
	spans   []obs.Span
}

// complete reports whether the group covers the full path the acceptance
// bar cares about: pushed by the sender and authenticated by a receiver.
func (g *traceGroup) complete() bool {
	var pushed, authed bool
	for _, s := range g.spans {
		switch s.Kind {
		case obs.SpanPush:
			pushed = true
		case obs.SpanAuthenticate:
			authed = true
		}
	}
	return pushed && authed
}

// groupTraces buckets spans by trace ID and orders each group in
// pipeline-then-time order, groups themselves by first-span time.
func groupTraces(spans []obs.Span) []*traceGroup {
	byTrace := make(map[uint64]*traceGroup)
	var order []*traceGroup
	for _, s := range spans {
		g, ok := byTrace[s.Trace]
		if !ok {
			g = &traceGroup{trace: s.Trace, stream: s.Stream, block: s.Block, firstNS: s.TimeNS}
			byTrace[s.Trace] = g
			order = append(order, g)
		}
		if s.TimeNS != 0 && (g.firstNS == 0 || s.TimeNS < g.firstNS) {
			g.firstNS = s.TimeNS
		}
		g.spans = append(g.spans, s)
	}
	for _, g := range order {
		sort.SliceStable(g.spans, func(i, j int) bool {
			a, b := g.spans[i], g.spans[j]
			if a.TimeNS != b.TimeNS {
				return a.TimeNS < b.TimeNS
			}
			if spanKindOrder[a.Kind] != spanKindOrder[b.Kind] {
				return spanKindOrder[a.Kind] < spanKindOrder[b.Kind]
			}
			return a.Index < b.Index
		})
	}
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].firstNS != order[j].firstNS {
			return order[i].firstNS < order[j].firstNS
		}
		return order[i].trace < order[j].trace
	})
	return order
}

// maxRenderedTraces bounds the lifecycle section; the freshest traces are
// the ones that explain the incident.
const maxRenderedTraces = 12

// writeFlightReport renders one parsed dump as a human-readable
// post-mortem.
func writeFlightReport(w io.Writer, d *obs.FlightDump, skipped int) error {
	at := time.Unix(0, d.Meta.AtUnixNS).UTC()
	fmt.Fprintf(w, "flight recorder post-mortem\n")
	fmt.Fprintf(w, "===========================\n")
	fmt.Fprintf(w, "reason    %s\n", d.Meta.Reason)
	fmt.Fprintf(w, "dumped    %s\n", at.Format(time.RFC3339Nano))
	fmt.Fprintf(w, "spans     %d buffered (%d recorded over the ring's life)\n", d.Meta.Spans, d.Meta.SpanTotal)
	fmt.Fprintf(w, "faults    %d, metric snapshots %d\n", d.Meta.Faults, d.Meta.Snapshots)
	if skipped > 0 {
		fmt.Fprintf(w, "skipped   %d damaged/foreign line(s) in the dump\n", skipped)
	}

	if len(d.Faults) > 0 {
		fmt.Fprintf(w, "\nfault timeline\n--------------\n")
		for _, f := range d.Faults {
			t := time.Unix(0, f.TimeNS).UTC().Format("15:04:05.000")
			if f.Detail != "" {
				fmt.Fprintf(w, "%s  %-10s %s\n", t, f.Kind, f.Detail)
			} else {
				fmt.Fprintf(w, "%s  %s\n", t, f.Kind)
			}
		}
	}

	if d.SLO != nil && len(d.SLO.Streams) > 0 {
		fmt.Fprintf(w, "\nslo budgets at dump time (window %v, state %s)\n", time.Duration(d.SLO.WindowNS), d.SLO.State)
		fmt.Fprintf(w, "----------------------------------------------\n")
		fmt.Fprintf(w, "%-8s %-9s %-8s %-10s %-12s %s\n", "stream", "attempts", "auth", "frac", "tta_p99", "objectives")
		for _, s := range d.SLO.Streams {
			fmt.Fprintf(w, "%-8d %-9d %-8d %-10.3f %-12v ",
				s.Stream, s.Attempts, s.Authenticated, s.AuthFraction,
				time.Duration(s.TTAP99NS).Round(time.Microsecond))
			for i, o := range s.Objectives {
				if i > 0 {
					fmt.Fprintf(w, ", ")
				}
				fmt.Fprintf(w, "%s %s (burn %.2f)", o.Name, o.State, o.BurnRate)
			}
			fmt.Fprintln(w)
		}
	}

	groups := groupTraces(d.Spans)
	complete := 0
	for _, g := range groups {
		if g.complete() {
			complete++
		}
	}
	fmt.Fprintf(w, "\nblock lifecycles\n----------------\n")
	fmt.Fprintf(w, "traces: %d (complete sender->authenticate: %d)\n", len(groups), complete)
	shown := groups
	if len(shown) > maxRenderedTraces {
		// The freshest traces explain the incident; drop the oldest.
		fmt.Fprintf(w, "showing newest %d of %d traces\n", maxRenderedTraces, len(groups))
		shown = shown[len(shown)-maxRenderedTraces:]
	}
	for _, g := range shown {
		fmt.Fprintf(w, "\ntrace %016x  stream %d  block %d%s\n", g.trace, g.stream, g.block,
			map[bool]string{true: "  [complete]", false: ""}[g.complete()])
		var prev int64
		for _, s := range g.spans {
			var delta string
			if prev != 0 && s.TimeNS != 0 {
				delta = fmt.Sprintf(" (+%v)", time.Duration(s.TimeNS-prev).Round(time.Microsecond))
			}
			if s.TimeNS != 0 {
				prev = s.TimeNS
			}
			fmt.Fprintf(w, "  %-14s", s.Kind)
			if s.Index != 0 {
				fmt.Fprintf(w, " idx %-4d", s.Index)
			}
			if s.DurNS != 0 {
				fmt.Fprintf(w, " dur %v", time.Duration(s.DurNS).Round(time.Microsecond))
			}
			if s.Reason != "" {
				fmt.Fprintf(w, " reason=%s", s.Reason)
			}
			fmt.Fprintf(w, "%s\n", delta)
		}
	}
	return nil
}

// runFlight loads a flight dump and renders the post-mortem.
func runFlight(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	d, skipped, err := obs.ReadFlightDump(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return writeFlightReport(os.Stdout, d, skipped)
}

// runSeries summarizes a -metrics-interval JSONL series: line counts,
// time span, and how many lines were damaged or foreign (surfacing the
// skipped count that ReadSnapshotLines reports).
func runSeries(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	series, skipped, err := obs.ReadSnapshotLines(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("metrics series: %d snapshot(s), %d skipped line(s)\n", len(series), skipped)
	if len(series) > 0 {
		first := time.Unix(0, series[0].AtUnixNS).UTC()
		last := time.Unix(0, series[len(series)-1].AtUnixNS).UTC()
		fmt.Printf("span: %s .. %s (%v)\n",
			first.Format(time.RFC3339), last.Format(time.RFC3339),
			last.Sub(first).Round(time.Second))
		final := series[len(series)-1].Metrics
		fmt.Printf("final snapshot: %d counters, %d gauges, %d histograms\n",
			len(final.Counters), len(final.Gauges), len(final.Histograms))
	}
	if skipped > 0 {
		fmt.Printf("warning: %d line(s) could not be parsed as timed snapshots\n", skipped)
	}
	return nil
}
