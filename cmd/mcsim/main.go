// Command mcsim runs an end-to-end multicast simulation for a chosen
// scheme and loss model and prints measured metrics next to the analytic
// predictions of the dependence-graph framework.
//
// Usage:
//
//	mcsim -scheme emss -n 100 -p 0.2 -receivers 500
//	mcsim -scheme tesla -n 100 -p 0.5 -receivers 200 -mu 200ms -sigma 80ms
//	mcsim -scheme augchain -n 101 -burst 5 -receivers 500
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"text/tabwriter"
	"time"

	"mcauth/internal/analysis"
	"mcauth/internal/crypto"
	"mcauth/internal/delay"
	"mcauth/internal/diagnose"
	"mcauth/internal/loss"
	"mcauth/internal/netsim"
	"mcauth/internal/obs"
	"mcauth/internal/scheme"
	"mcauth/internal/scheme/augchain"
	"mcauth/internal/scheme/authtree"
	"mcauth/internal/scheme/emss"
	"mcauth/internal/scheme/rohatgi"
	"mcauth/internal/scheme/signeach"
	"mcauth/internal/scheme/tesla"
	"mcauth/internal/stats"
)

type options struct {
	scheme    string
	n         int
	p         float64
	burst     int
	receivers int
	mu        time.Duration
	sigma     time.Duration
	interval  time.Duration
	seed      uint64
	workers   int
	m, d      int
	a, b      int
	lag       int
	latejoin  int

	chaos      bool
	chaosRate  float64
	chaosSeeds int

	overlay    bool
	depth      int
	fanout     int
	edgeP      float64
	lossyEdges int
	relays     bool
	repairRTT  time.Duration
	summary    string

	trace      string
	metrics    string
	report     string
	cpuprofile string
	memprofile string
	pprofAddr  string
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mcsim:", err)
		os.Exit(1)
	}
}

func parseOptions(args []string) (options, error) {
	fs := flag.NewFlagSet("mcsim", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.scheme, "scheme", "emss", "scheme: rohatgi|emss|augchain|authtree|signeach|tesla")
	fs.IntVar(&o.n, "n", 100, "block size (payloads per block)")
	fs.Float64Var(&o.p, "p", 0.1, "i.i.d. loss probability")
	fs.IntVar(&o.burst, "burst", 0, "mean burst length; >1 switches to Gilbert-Elliott loss at rate p")
	fs.IntVar(&o.receivers, "receivers", 200, "number of receivers")
	fs.DurationVar(&o.mu, "mu", 20*time.Millisecond, "mean end-to-end delay")
	fs.DurationVar(&o.sigma, "sigma", 5*time.Millisecond, "delay standard deviation")
	fs.DurationVar(&o.interval, "interval", 10*time.Millisecond, "packet send interval")
	fs.Uint64Var(&o.seed, "seed", 1, "simulation seed")
	fs.IntVar(&o.workers, "workers", 0, "receiver simulation worker pool size (0 = GOMAXPROCS); results are identical for any setting")
	fs.IntVar(&o.m, "m", 2, "EMSS m")
	fs.IntVar(&o.d, "d", 1, "EMSS d")
	fs.IntVar(&o.a, "a", 3, "augmented chain a")
	fs.IntVar(&o.b, "b", 3, "augmented chain b")
	fs.IntVar(&o.lag, "lag", 4, "TESLA disclosure lag (intervals)")
	fs.IntVar(&o.latejoin, "latejoin", 0, "number of receivers joining mid-block")
	fs.BoolVar(&o.overlay, "overlay", false, "deliver through a relay fan-out tree (see -depth/-fanout/-edgep/-relays) instead of the flat topology")
	fs.IntVar(&o.depth, "depth", 2, "overlay tree depth (levels of relays below the source)")
	fs.IntVar(&o.fanout, "fanout", 4, "overlay tree fanout per node")
	fs.Float64Var(&o.edgeP, "edgep", 0, "i.i.d. loss rate on the lossy mid-tree edges (0 = all edges lossless)")
	fs.IntVar(&o.lossyEdges, "lossyedges", 1, "how many first-level tree edges lose packets at -edgep")
	fs.BoolVar(&o.relays, "relays", false, "relays serve NACK signature repairs from local retention")
	fs.DurationVar(&o.repairRTT, "repair-rtt", 40*time.Millisecond, "one NACK repair round trip to the serving relay")
	fs.StringVar(&o.summary, "summary", "", "write a deterministic JSON summary of the overlay run to this file (byte-identical at any -workers)")
	fs.BoolVar(&o.chaos, "chaos", false, "run the fault-injection soak: every scheme x every fault preset x -chaosseeds seeds")
	fs.Float64Var(&o.chaosRate, "chaosrate", 0.02, "per-packet fault injection rate for -chaos")
	fs.IntVar(&o.chaosSeeds, "chaosseeds", 3, "seeds per scheme/preset cell for -chaos")
	fs.StringVar(&o.trace, "trace", "", "write a JSONL packet-lifecycle trace to this file")
	fs.StringVar(&o.metrics, "metrics", "", "write end-of-run metrics: '-' for a text table on stdout, else JSON to this file")
	fs.StringVar(&o.report, "report", "", "write a root-cause diagnosis report: JSON to this file, markdown alongside it at <file>.md")
	fs.StringVar(&o.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&o.memprofile, "memprofile", "", "write a heap profile to this file at exit")
	fs.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. :6060)")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	return o, nil
}

func buildScheme(o options, signer crypto.Signer) (scheme.Scheme, []uint32, float64, error) {
	dataIdx := func(from, to int) []uint32 {
		out := make([]uint32, 0, to-from+1)
		for i := from; i <= to; i++ {
			out = append(out, uint32(i))
		}
		return out
	}
	switch o.scheme {
	case "rohatgi":
		s, err := rohatgi.New(o.n, signer)
		if err != nil {
			return nil, nil, 0, err
		}
		res, err := analysis.Rohatgi(o.n, o.p)
		if err != nil {
			return nil, nil, 0, err
		}
		return s, dataIdx(1, o.n), res.QMin, nil
	case "emss":
		s, err := emss.New(emss.Config{N: o.n, M: o.m, D: o.d}, signer)
		if err != nil {
			return nil, nil, 0, err
		}
		// Prefer the exact Markov evaluator when its window fits; the
		// paper's recurrence is an optimistic upper bound (see
		// EXPERIMENTS.md, "markovgap").
		cfg := analysis.EMSS{N: o.n, M: o.m, D: o.d, P: o.p}
		exact := analysis.MarkovExact{N: o.n, Offsets: cfg.Offsets(), P: o.p}
		if exact.Validate() == nil {
			qmin, err := exact.QMin()
			if err != nil {
				return nil, nil, 0, err
			}
			return s, dataIdx(1, o.n), qmin, nil
		}
		qmin, err := cfg.QMin()
		if err != nil {
			return nil, nil, 0, err
		}
		return s, dataIdx(1, o.n), qmin, nil
	case "augchain":
		s, err := augchain.New(augchain.Config{N: o.n, A: o.a, B: o.b}, signer)
		if err != nil {
			return nil, nil, 0, err
		}
		qmin, err := analysis.AugChain{N: o.n, A: o.a, B: o.b, P: o.p}.QMin()
		if err != nil {
			return nil, nil, 0, err
		}
		return s, dataIdx(1, o.n), qmin, nil
	case "authtree":
		s, err := authtree.New(o.n, signer)
		if err != nil {
			return nil, nil, 0, err
		}
		return s, dataIdx(1, o.n), 1, nil
	case "signeach":
		s, err := signeach.New(o.n, signer)
		if err != nil {
			return nil, nil, 0, err
		}
		return s, dataIdx(1, o.n), 1, nil
	case "tesla":
		cfg := tesla.Config{
			N:        o.n,
			Lag:      o.lag,
			Interval: o.interval,
			Start:    time.Unix(0, 0),
			Seed:     []byte("mcsim"),
		}
		s, err := tesla.New(cfg, signer)
		if err != nil {
			return nil, nil, 0, err
		}
		qmin, err := analysis.TESLA{
			N:     o.n,
			P:     o.p,
			TDisc: cfg.TDisclose().Seconds(),
			Mu:    o.mu.Seconds(),
			Sigma: o.sigma.Seconds(),
		}.QMin()
		if err != nil {
			return nil, nil, 0, err
		}
		indices := make([]uint32, o.n)
		for i := range indices {
			indices[i] = tesla.DataWireIndex(i + 1)
		}
		return s, indices, qmin, nil
	default:
		return nil, nil, 0, fmt.Errorf("unknown scheme %q", o.scheme)
	}
}

// reliableIndices is the per-scheme signature-wire convention: trailing
// signature for the chained constructions, leading for the rest.
func reliableIndices(o options) []uint32 {
	if o.scheme == "emss" || o.scheme == "augchain" {
		return []uint32{uint32(o.n)}
	}
	return []uint32{1}
}

// buildLossModel maps -p/-burst to the last-hop loss process.
func buildLossModel(o options) (loss.Model, error) {
	if o.burst > 1 {
		pBadToGood := 1 / float64(o.burst)
		pGoodToBad := o.p * pBadToGood / (1 - o.p)
		return loss.NewGilbertElliott(pGoodToBad, pBadToGood, 0, 1)
	}
	return loss.NewBernoulli(o.p)
}

// setupObservability opens every requested output up front so an
// unwritable path fails the run immediately with a clear error instead of
// silently discarding the data after the simulation has burned CPU.
// It returns the tracer and registry to wire into the run (either may be
// nil) plus a finish func that writes/flushes the outputs.
func setupObservability(o options) (tracer *obs.JSONLTracer, reg *obs.Registry, finish func() error, err error) {
	var metricsFile *os.File

	if o.trace != "" {
		f, err := os.Create(o.trace)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("trace output unwritable: %w", err)
		}
		tracer = obs.NewJSONLTracer(f)
	}
	if o.metrics != "" || o.pprofAddr != "" {
		// The pprof listener also serves /metrics and /statusz, so a live
		// listener always gets a registry even without -metrics.
		reg = obs.NewRegistry()
		if o.metrics != "" && o.metrics != "-" {
			metricsFile, err = os.Create(o.metrics)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("metrics output unwritable: %w", err)
			}
		}
		crypto.Instrument(reg)
	}
	stopProfiles, err := obs.StartProfiles(o.cpuprofile, o.memprofile)
	if err != nil {
		return nil, nil, nil, err
	}
	var exposer *obs.Exposer
	if o.pprofAddr != "" {
		ln, err := net.Listen("tcp", o.pprofAddr)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("pprof listen %s: %w", o.pprofAddr, err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		exposer = obs.NewExposer(reg, obs.DefaultExposeInterval)
		exposer.SetStatus(func(w io.Writer) {
			fmt.Fprintf(w, "mcsim -scheme %s -n %d -p %g -receivers %d -seed %d\n",
				o.scheme, o.n, o.p, o.receivers, o.seed)
		})
		exposer.Register(mux)
		fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof/ (+/metrics, /statusz)\n", ln.Addr())
		go func() {
			_ = http.Serve(ln, mux)
		}()
	}

	finish = func() error {
		crypto.Uninstrument()
		if exposer != nil {
			exposer.Refresh()
			exposer.Close()
		}
		if tracer != nil {
			if err := tracer.Close(); err != nil {
				return fmt.Errorf("trace output: %w", err)
			}
		}
		if metricsFile != nil {
			if err := reg.Snapshot().WriteJSON(metricsFile); err != nil {
				metricsFile.Close()
				return fmt.Errorf("metrics output: %w", err)
			}
			if err := metricsFile.Close(); err != nil {
				return fmt.Errorf("metrics output: %w", err)
			}
		}
		return stopProfiles()
	}
	return tracer, reg, finish, nil
}

func run(args []string) error {
	o, err := parseOptions(args)
	if err != nil {
		return err
	}
	if o.chaos {
		return runChaos(o)
	}
	if o.overlay {
		return runOverlay(o)
	}
	if o.summary != "" {
		return fmt.Errorf("-summary needs -overlay")
	}
	tracer, reg, finishObs, err := setupObservability(o)
	if err != nil {
		return err
	}
	var reportJSON, reportMD *os.File
	var mem *obs.MemTracer
	if o.report != "" {
		reportJSON, err = os.Create(o.report)
		if err != nil {
			return fmt.Errorf("report output unwritable: %w", err)
		}
		reportMD, err = os.Create(o.report + ".md")
		if err != nil {
			return fmt.Errorf("report output unwritable: %w", err)
		}
		mem = &obs.MemTracer{}
	}
	signer := crypto.NewSignerFromString("mcsim-sender")
	s, dataIndices, analyticQMin, err := buildScheme(o, signer)
	if err != nil {
		return err
	}

	lossModel, err := buildLossModel(o)
	if err != nil {
		return err
	}
	delayModel, err := delay.NewGaussian(o.mu, o.sigma)
	if err != nil {
		return err
	}

	payloads := make([][]byte, s.BlockSize())
	for i := range payloads {
		payloads[i] = fmt.Appendf(nil, "payload-%06d", i)
	}
	// The signature / bootstrap packet is delivered reliably, matching
	// the paper's standing assumption.
	reliable := reliableIndices(o)
	simCfg := netsim.Config{
		Receivers:       o.receivers,
		Loss:            lossModel,
		Delay:           delayModel,
		SendInterval:    o.interval,
		Start:           time.Unix(0, 0),
		Seed:            o.seed,
		ReliableIndices: reliable,
		LateJoiners:     o.latejoin,
		Workers:         o.workers,
		Metrics:         reg,
	}
	switch {
	case tracer != nil && mem != nil:
		simCfg.Tracer = obs.MultiTracer{tracer, mem}
	case tracer != nil:
		simCfg.Tracer = tracer
	case mem != nil:
		simCfg.Tracer = mem
	}
	res, err := netsim.Run(s, simCfg, 1, payloads)
	if err != nil {
		return err
	}

	measured := res.MinAuthRatio(dataIndices)
	var delivered, lost, authed, rejected, unsafe int
	var latencies []float64
	var timeToAuth obs.HistogramData
	for _, rep := range res.PerReceiver {
		delivered += rep.Delivered
		lost += rep.Lost
		authed += rep.Stats.Authenticated
		rejected += rep.Stats.Rejected
		unsafe += rep.Stats.Unsafe
		timeToAuth.Merge(rep.Stats.TimeToAuth)
		for _, l := range rep.AuthLatencies {
			latencies = append(latencies, float64(l))
		}
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "scheme\t%s\n", s.Name())
	fmt.Fprintf(w, "loss model\t%s\n", lossModel.Name())
	fmt.Fprintf(w, "delay model\t%s\n", delayModel.Name())
	fmt.Fprintf(w, "receivers\t%d\n", o.receivers)
	fmt.Fprintf(w, "wire packets\t%d\n", res.WireCount)
	fmt.Fprintf(w, "delivered / lost\t%d / %d\n", delivered, lost)
	fmt.Fprintf(w, "authenticated\t%d\n", authed)
	fmt.Fprintf(w, "rejected (tampered)\t%d\n", rejected)
	fmt.Fprintf(w, "unsafe (TESLA late)\t%d\n", unsafe)
	fmt.Fprintf(w, "analytic q_min\t%.4f\n", analyticQMin)
	fmt.Fprintf(w, "measured q_min\t%.4f\n", measured)
	if len(latencies) > 0 {
		summary, err := stats.Summarize(latencies)
		if err == nil {
			fmt.Fprintf(w, "auth latency mean/max\t%v / %v\n",
				time.Duration(summary.Mean), time.Duration(summary.Max))
		}
	}
	if timeToAuth.Count > 0 {
		fmt.Fprintf(w, "time-to-auth p50/p90/p99\t%v / %v / %v\n",
			time.Duration(timeToAuth.Quantile(0.50)),
			time.Duration(timeToAuth.Quantile(0.90)),
			time.Duration(timeToAuth.Quantile(0.99)))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if o.metrics == "-" {
		fmt.Println()
		if err := reg.Snapshot().WriteText(os.Stdout); err != nil {
			return err
		}
	}
	if mem != nil {
		if err := writeReport(s, dataIndices, reliable[0], mem.Events(), reportJSON, reportMD); err != nil {
			return err
		}
	}
	return finishObs()
}

// writeReport joins the in-memory trace with the scheme's dependence graph
// and writes the root-cause report as JSON and markdown, plus a short text
// rendering on stdout.
func writeReport(s scheme.Scheme, dataIndices []uint32, root uint32, events []obs.Event, jsonOut, mdOut *os.File) error {
	opts := diagnose.Options{RootIndex: root, DataIndices: dataIndices}
	if vm, ok := s.(scheme.VertexMapper); ok {
		g, err := s.Graph()
		if err != nil {
			return err
		}
		opts.Graph = g
		opts.VertexOf = vm.VertexOf
	}
	rep, err := diagnose.BuildReport(events, 0, opts)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(jsonOut); err != nil {
		jsonOut.Close()
		return fmt.Errorf("report output: %w", err)
	}
	if err := jsonOut.Close(); err != nil {
		return fmt.Errorf("report output: %w", err)
	}
	if err := rep.WriteMarkdown(mdOut); err != nil {
		mdOut.Close()
		return fmt.Errorf("report output: %w", err)
	}
	if err := mdOut.Close(); err != nil {
		return fmt.Errorf("report output: %w", err)
	}
	fmt.Println()
	return rep.WriteText(os.Stdout)
}
