// Overlay mode: -overlay delivers the block through a relay fan-out tree
// (netsim.RunOverlay) instead of the flat topology. The cell's -p/-burst
// model becomes the per-receiver last hop; the first -lossyedges tree
// edges drop packets i.i.d. at -edgep, shared by their whole subtree —
// the correlated-loss regime where the analytic i.i.d. bound no longer
// predicts the measurement and the simulation is the source of truth.
// -summary writes a JSON digest that is byte-identical at any -workers
// setting, which is what ci.sh diffs to enforce the determinism contract
// at 10^5 receivers.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/delay"
	"mcauth/internal/loss"
	"mcauth/internal/netsim"
)

// overlaySummary is the deterministic digest -summary writes: everything
// in it derives from seeded RNG streams and additive per-receiver counts,
// never from wall clocks or map iteration.
type overlaySummary struct {
	Scheme     string  `json:"scheme"`
	Receivers  int     `json:"receivers"`
	WireCount  int     `json:"wire_count"`
	Depth      int     `json:"depth"`
	Fanout     int     `json:"fanout"`
	EdgeP      float64 `json:"edge_p"`
	LossyEdges int     `json:"lossy_edges"`
	Relays     bool    `json:"relays"`
	Seed       uint64  `json:"seed"`

	Delivered        int     `json:"delivered"`
	Lost             int     `json:"lost"`
	Authenticated    int     `json:"authenticated"`
	AuthFraction     float64 `json:"auth_fraction"`
	MinQMin          float64 `json:"min_qmin"`
	UpstreamRepaired int     `json:"upstream_repaired"`
	ReceiverRepairs  int     `json:"receiver_repairs"`
	Flagged          []int   `json:"flagged,omitempty"`

	RelayReports []netsim.RelayReport `json:"relay_reports"`
}

func runOverlay(o options) error {
	if o.chaos || o.latejoin > 0 {
		return fmt.Errorf("-overlay composes with neither -chaos nor -latejoin")
	}
	signer := crypto.NewSignerFromString("mcsim-sender")
	s, dataIndices, analyticQMin, err := buildScheme(o, signer)
	if err != nil {
		return err
	}
	lossModel, err := buildLossModel(o)
	if err != nil {
		return err
	}
	delayModel, err := delay.NewGaussian(o.mu, o.sigma)
	if err != nil {
		return err
	}
	tree, err := loss.NewUniformTree(o.seed^0x6f7665726c6179, o.depth, o.fanout, nil, lossModel)
	if err != nil {
		return err
	}
	if o.edgeP > 0 {
		if o.lossyEdges < 0 || o.lossyEdges > o.fanout {
			return fmt.Errorf("-lossyedges %d out of [0,%d]", o.lossyEdges, o.fanout)
		}
		for e := 1; e <= o.lossyEdges; e++ {
			edge, err := loss.NewBernoulli(o.edgeP)
			if err != nil {
				return err
			}
			if err := tree.SetEdge(e, edge); err != nil {
				return err
			}
		}
	}

	payloads := make([][]byte, s.BlockSize())
	for i := range payloads {
		payloads[i] = fmt.Appendf(nil, "payload-%06d", i)
	}
	simCfg := netsim.Config{
		Receivers:       o.receivers,
		Delay:           delayModel,
		SendInterval:    o.interval,
		Start:           time.Unix(0, 0),
		Seed:            o.seed,
		ReliableIndices: reliableIndices(o),
		Workers:         o.workers,
	}
	res, err := netsim.RunOverlay(s, simCfg, netsim.OverlayConfig{
		Tree:      tree,
		Relays:    o.relays,
		RepairRTT: o.repairRTT,
	}, 1, payloads)
	if err != nil {
		return err
	}

	sum := overlaySummary{
		Scheme:       s.Name(),
		Receivers:    o.receivers,
		WireCount:    res.WireCount,
		Depth:        o.depth,
		Fanout:       o.fanout,
		EdgeP:        o.edgeP,
		LossyEdges:   o.lossyEdges,
		Relays:       o.relays,
		Seed:         o.seed,
		Flagged:      res.Flagged,
		RelayReports: res.Relays,
	}
	for i := range res.PerReceiver {
		rep := &res.PerReceiver[i]
		sum.Delivered += rep.Delivered
		sum.Lost += rep.Lost
		sum.Authenticated += rep.Stats.Authenticated
	}
	sum.AuthFraction = float64(sum.Authenticated) / float64(o.receivers*res.WireCount)
	sum.MinQMin = res.MinAuthRatio(dataIndices)
	for _, rep := range res.Relays {
		sum.UpstreamRepaired += rep.UpstreamRepaired
		sum.ReceiverRepairs += rep.ServedRepairs
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "scheme\t%s\n", s.Name())
	fmt.Fprintf(w, "overlay tree\tdepth %d, fanout %d (%d relays, %d leaves)\n",
		o.depth, o.fanout, tree.Nodes()-1, len(tree.Leaves()))
	fmt.Fprintf(w, "edge loss\t%d edge(s) at p=%g; last hop %s\n", o.lossyEdges, o.edgeP, lossModel.Name())
	fmt.Fprintf(w, "relays\t%v\n", o.relays)
	fmt.Fprintf(w, "receivers\t%d\n", o.receivers)
	fmt.Fprintf(w, "wire packets\t%d\n", res.WireCount)
	fmt.Fprintf(w, "delivered / lost\t%d / %d\n", sum.Delivered, sum.Lost)
	fmt.Fprintf(w, "authenticated\t%d (fraction %.4f)\n", sum.Authenticated, sum.AuthFraction)
	fmt.Fprintf(w, "upstream repairs\t%d\n", sum.UpstreamRepaired)
	fmt.Fprintf(w, "receiver repairs\t%d\n", sum.ReceiverRepairs)
	fmt.Fprintf(w, "withholding flags\t%v\n", sum.Flagged)
	fmt.Fprintf(w, "analytic q_min (i.i.d. last hop)\t%.4f\n", analyticQMin)
	fmt.Fprintf(w, "measured q_min\t%.4f\n", sum.MinQMin)
	if o.lossyEdges > 0 && o.edgeP > 0 {
		fmt.Fprintln(w, "note\tcorrelated tree-edge loss: the analytic bound assumes i.i.d. per-receiver loss and does not apply; the measurement is authoritative")
	}
	if err := w.Flush(); err != nil {
		return err
	}

	if o.summary != "" {
		f, err := os.Create(o.summary)
		if err != nil {
			return fmt.Errorf("summary output unwritable: %w", err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			f.Close()
			return fmt.Errorf("summary output: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("summary output: %w", err)
		}
	}
	return nil
}
