package main

import "testing"

func TestRunSchemes(t *testing.T) {
	for _, name := range []string{"rohatgi", "emss", "augchain", "authtree", "signeach", "tesla"} {
		name := name
		t.Run(name, func(t *testing.T) {
			err := run([]string{
				"-scheme", name, "-n", "16", "-p", "0.2",
				"-receivers", "10", "-seed", "3",
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunBurstAndLateJoin(t *testing.T) {
	err := run([]string{
		"-scheme", "augchain", "-n", "17", "-p", "0.1", "-burst", "3",
		"-receivers", "10", "-latejoin", "4",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-scheme", "nope"}); err == nil {
		t.Error("unknown scheme should fail")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("unknown flag should fail")
	}
	if err := run([]string{"-scheme", "emss", "-n", "2", "-m", "5"}); err == nil {
		t.Error("invalid EMSS parameters should fail")
	}
}
