package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"mcauth/internal/diagnose"
	"mcauth/internal/obs"
)

func TestRunSchemes(t *testing.T) {
	for _, name := range []string{"rohatgi", "emss", "augchain", "authtree", "signeach", "tesla"} {
		name := name
		t.Run(name, func(t *testing.T) {
			err := run([]string{
				"-scheme", name, "-n", "16", "-p", "0.2",
				"-receivers", "10", "-seed", "3",
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunBurstAndLateJoin(t *testing.T) {
	err := run([]string{
		"-scheme", "augchain", "-n", "17", "-p", "0.1", "-burst", "3",
		"-receivers", "10", "-latejoin", "4",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-scheme", "nope"}); err == nil {
		t.Error("unknown scheme should fail")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("unknown flag should fail")
	}
	if err := run([]string{"-scheme", "emss", "-n", "2", "-m", "5"}); err == nil {
		t.Error("invalid EMSS parameters should fail")
	}
}

// TestObservabilityOutputs drives a full run with -trace and -metrics and
// cross-checks the emitted artifacts against each other: per-receiver
// authenticated event counts in the trace must equal the verifier counter
// in the metrics JSON, and the metrics must carry the crypto op counts,
// buffer high-water histograms, and time-to-auth histogram the issue
// promises.
func TestObservabilityOutputs(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.jsonl")
	metricsPath := filepath.Join(dir, "metrics.json")
	err := run([]string{
		"-scheme", "emss", "-n", "24", "-p", "0.2",
		"-receivers", "8", "-seed", "11",
		"-trace", tracePath, "-metrics", metricsPath,
	})
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, skipped, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("trace has %d undecodable lines", skipped)
	}
	if len(events) == 0 {
		t.Fatal("trace is empty")
	}
	authedByRecv := make(map[int]int64)
	var totalAuthed int64
	for _, e := range events {
		if e.Type == obs.EventAuthenticated {
			authedByRecv[e.Receiver]++
			totalAuthed++
		}
	}
	if len(authedByRecv) != 8 {
		t.Errorf("authenticated events span %d receivers, want 8", len(authedByRecv))
	}

	raw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	if got := snap.Counters["verifier.authenticated"]; got != totalAuthed {
		t.Errorf("verifier.authenticated = %d, trace has %d authenticated events", got, totalAuthed)
	}
	if snap.Counters["crypto.hash_ops"] <= 0 {
		t.Error("crypto.hash_ops missing from metrics")
	}
	if snap.Counters["crypto.verify_ops"] <= 0 {
		t.Error("crypto.verify_ops missing from metrics")
	}
	h, ok := snap.Histograms["verifier.msg_buffer_high_water"]
	if !ok || h.Count == 0 {
		t.Error("verifier.msg_buffer_high_water histogram missing or empty")
	}
	tta, ok := snap.Histograms["verifier.time_to_auth_ns"]
	if !ok {
		t.Fatal("verifier.time_to_auth_ns histogram missing")
	}
	if tta.Count != totalAuthed {
		t.Errorf("time_to_auth count = %d, want %d", tta.Count, totalAuthed)
	}
	if tta.P99 < tta.P50 {
		t.Errorf("p99 %v < p50 %v", tta.P99, tta.P50)
	}
}

// TestProfilesWritten exercises -cpuprofile and -memprofile.
func TestProfilesWritten(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	err := run([]string{
		"-scheme", "rohatgi", "-n", "8", "-receivers", "2",
		"-cpuprofile", cpu, "-memprofile", mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

// TestUnwritableOutputsFail verifies the run fails up front, before any
// simulation work, when an observability path cannot be created.
func TestUnwritableOutputsFail(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "out")
	for _, flagName := range []string{"-trace", "-metrics", "-cpuprofile", "-memprofile"} {
		if err := run([]string{"-scheme", "rohatgi", "-n", "4", "-receivers", "1", flagName, bad}); err == nil {
			t.Errorf("%s %s should fail", flagName, bad)
		}
	}
}

// TestReportOutput drives -report end to end: the JSON report must parse,
// account for every unauthenticated packet with exactly one cause, and be
// accompanied by a non-empty markdown rendering.
func TestReportOutput(t *testing.T) {
	dir := t.TempDir()
	repPath := filepath.Join(dir, "rep.json")
	err := run([]string{
		"-scheme", "emss", "-n", "20", "-p", "0.25",
		"-receivers", "12", "-seed", "5", "-report", repPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(repPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep diagnose.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report JSON: %v", err)
	}
	if rep.Receivers != 12 {
		t.Errorf("receivers = %d, want 12", rep.Receivers)
	}
	var causeTotal int
	for _, c := range rep.Causes {
		causeTotal += c
	}
	if causeTotal != rep.Unauthenticated {
		t.Errorf("causes sum to %d, want unauthenticated = %d", causeTotal, rep.Unauthenticated)
	}
	if len(rep.Diagnoses) != rep.Unauthenticated {
		t.Errorf("%d diagnoses, want %d", len(rep.Diagnoses), rep.Unauthenticated)
	}
	if rep.OverheadHashesPerPacket <= 0 {
		t.Error("overhead missing: the EMSS graph should have been joined in")
	}
	md, err := os.ReadFile(repPath + ".md")
	if err != nil {
		t.Fatal(err)
	}
	if len(md) == 0 {
		t.Error("markdown report is empty")
	}

	bad := filepath.Join(dir, "no-such-dir", "rep.json")
	if err := run([]string{"-scheme", "rohatgi", "-n", "4", "-receivers", "1", "-report", bad}); err == nil {
		t.Errorf("-report %s should fail", bad)
	}
}

// TestPprofServesMetrics boots the -pprof listener on an ephemeral port and
// scrapes /metrics and /statusz after the run: the exposer's final snapshot
// keeps serving, and /metrics must look like Prometheus text exposition.
func TestPprofServesMetrics(t *testing.T) {
	oldStderr := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	runErr := run([]string{
		"-scheme", "emss", "-n", "12", "-p", "0.2",
		"-receivers", "4", "-pprof", "127.0.0.1:0",
	})
	w.Close()
	os.Stderr = oldStderr
	captured, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	m := regexp.MustCompile(`http://([^/]+)/debug/pprof/`).FindSubmatch(captured)
	if m == nil {
		t.Fatalf("no pprof address announced in %q", captured)
	}
	addr := string(m[1])

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text exposition", ct)
	}
	if !strings.Contains(string(body), "# TYPE netsim_sent counter") {
		t.Errorf("/metrics missing netsim_sent counter:\n%s", body)
	}
	sample := regexp.MustCompile(`(?m)^netsim_sent ([0-9]+)$`).FindStringSubmatch(string(body))
	if sample == nil {
		t.Fatalf("/metrics has no netsim_sent sample:\n%s", body)
	}
	if sample[1] == "0" {
		t.Error("netsim_sent = 0 after a completed run")
	}

	resp, err = http.Get("http://" + addr + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "mcsim -scheme emss") {
		t.Errorf("/statusz missing the run configuration:\n%s", body)
	}
}
