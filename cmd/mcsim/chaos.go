package main

import (
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"mcauth/internal/crypto"
	"mcauth/internal/delay"
	"mcauth/internal/fault"
	"mcauth/internal/loss"
	"mcauth/internal/netsim"
)

// chaosSchemes is the full matrix the soak drives; every runnable scheme
// must hold its invariants under every fault preset.
var chaosSchemes = []string{"rohatgi", "emss", "augchain", "authtree", "signeach", "tesla"}

// chaosMaxBuffered caps every verifier's pending buffer during the soak;
// the run fails if any receiver buffers past it.
const chaosMaxBuffered = 64

// runChaos is mcsim's -chaos mode: a seeded soak of every scheme under
// every fault preset, asserting the robustness invariants — zero forged
// packets authenticated, buffers bounded, genuine progress everywhere. It
// prints one row per run and exits non-zero if any invariant is violated.
func runChaos(o options) error {
	if o.chaosRate <= 0 || o.chaosRate > 0.5 {
		return fmt.Errorf("chaos rate %v out of (0,0.5]", o.chaosRate)
	}
	if o.chaosSeeds < 1 {
		return fmt.Errorf("chaos seeds %d must be >= 1", o.chaosSeeds)
	}
	lossModel, err := loss.NewBernoulli(o.p)
	if err != nil {
		return err
	}
	delayModel, err := delay.NewGaussian(o.mu, o.sigma)
	if err != nil {
		return err
	}
	signer := crypto.NewSignerFromString("mcsim-sender")

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scheme\tpreset\tseed\tinjected\tforged inj/rej\tauthed\trejected\tbuf hw\tverdict")
	violations := 0
	for _, name := range chaosSchemes {
		so := o
		so.scheme = name
		s, _, _, err := buildScheme(so, signer)
		if err != nil {
			return fmt.Errorf("chaos %s: %w", name, err)
		}
		payloads := make([][]byte, s.BlockSize())
		for i := range payloads {
			payloads[i] = fmt.Appendf(nil, "payload-%06d", i)
		}
		reliable := []uint32{1}
		if name == "emss" || name == "augchain" {
			reliable = []uint32{uint32(o.n)}
		}
		for _, preset := range fault.PresetNames() {
			fc, err := fault.Preset(preset, o.chaosRate)
			if err != nil {
				return err
			}
			for seed := uint64(1); seed <= uint64(o.chaosSeeds); seed++ {
				cfg := netsim.Config{
					Receivers:       o.receivers,
					Loss:            lossModel,
					Delay:           delayModel,
					SendInterval:    o.interval,
					Start:           time.Unix(0, 0),
					Seed:            seed,
					ReliableIndices: reliable,
					SigRetransmits:  2,
					Faults:          &fc,
					MaxBuffered:     chaosMaxBuffered,
					Workers:         o.workers,
				}
				res, err := netsim.Run(s, cfg, 1, payloads)
				if err != nil {
					return fmt.Errorf("chaos %s/%s seed %d: %w", name, preset, seed, err)
				}
				ft := res.FaultTotals()
				authed := res.TotalAuthenticated()
				rejected := 0
				for _, rep := range res.PerReceiver {
					rejected += rep.Stats.Rejected
				}
				hw := res.MaxBufferHighWater()
				verdict := "ok"
				switch {
				case ft.ForgedAuthenticated > 0:
					verdict = fmt.Sprintf("FORGED AUTH x%d", ft.ForgedAuthenticated)
					violations++
				case hw > chaosMaxBuffered:
					verdict = fmt.Sprintf("BUFFER %d > %d", hw, chaosMaxBuffered)
					violations++
				case authed == 0:
					verdict = "NO PROGRESS"
					violations++
				}
				fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d/%d\t%d\t%d\t%d\t%s\n",
					name, preset, seed,
					ft.Corrupted+ft.Truncated+ft.Duplicated+ft.ForgedInjected,
					ft.ForgedInjected, ft.ForgedRejected,
					authed, rejected, hw, verdict)
			}
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	runs := len(chaosSchemes) * len(fault.PresetNames()) * o.chaosSeeds
	if violations > 0 {
		return fmt.Errorf("chaos soak: %d of %d runs violated invariants", violations, runs)
	}
	fmt.Printf("chaos soak: %d runs, all invariants held\n", runs)
	return nil
}
