package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

const goldenStamp = "20260101T000000Z"

// runSweep executes the bundled example sweep into outDir with the given
// worker count and a fixed stamp, so directory names (and therefore the
// rendered dashboard) are reproducible.
func runSweep(t *testing.T, outDir string, workers int) {
	t.Helper()
	err := cmdRun([]string{
		filepath.Join("..", "..", "examples", "lab", "basic.json"),
		"-out", outDir, "-workers", fmt.Sprint(workers), "-stamp", goldenStamp,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
}

func renderSweep(t *testing.T, outDir string) []byte {
	t.Helper()
	mdPath := filepath.Join(outDir, "dashboard.md")
	err := cmdRender([]string{
		"-out", outDir, "-bench", filepath.Join("testdata", "bench"),
		"-md", mdPath, "-html", filepath.Join(outDir, "dashboard.html"),
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	md, err := os.ReadFile(mdPath)
	if err != nil {
		t.Fatal(err)
	}
	return md
}

// TestGoldenDashboard pins the rendered markdown dashboard byte-for-byte:
// the bundled example sweep (fixed seed and stamp) joined with the two
// bench fixtures under testdata/bench. Every layer under it — cell
// execution, artifact layout, bench ingestion, rendering — is
// deterministic, so the bytes are identical on every machine and at every
// -workers setting (the workers 1 vs 4 comparison is part of the test).
// Regenerate with: go test ./cmd/mclab -run TestGoldenDashboard -update
func TestGoldenDashboard(t *testing.T) {
	base := t.TempDir()
	w1, w4 := filepath.Join(base, "w1"), filepath.Join(base, "w4")
	runSweep(t, w1, 1)
	runSweep(t, w4, 4)
	md1 := renderSweep(t, w1)
	md4 := renderSweep(t, w4)
	if !bytes.Equal(md1, md4) {
		t.Fatalf("dashboard differs between -workers 1 and 4:\n--- w1 ---\n%s\n--- w4 ---\n%s", md1, md4)
	}

	golden := filepath.Join("testdata", "dashboard.golden.md")
	if *update {
		if err := os.WriteFile(golden, md1, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(md1, want) {
		t.Errorf("dashboard drifted from %s;\nrerun with -update if the change is intended.\n--- got ---\n%s\n--- want ---\n%s",
			golden, md1, want)
	}

	// The HTML wrapper carries the same rows.
	html, err := os.ReadFile(filepath.Join(w1, "dashboard.html"))
	if err != nil {
		t.Fatal(err)
	}
	for _, wantFrag := range []string{"<h1>mcauth lab dashboard</h1>", "<td>rohatgi/bernoulli(p=0.2)/n=16/r=120</td>"} {
		if !strings.Contains(string(html), wantFrag) {
			t.Errorf("HTML dashboard missing %q", wantFrag)
		}
	}
}

// TestCheckGates drives `mclab check` both ways: the committed
// lab/baselines.json passes against the example sweep, and an injected
// q_min floor violation fails (the path main() turns into a non-zero
// exit).
func TestCheckGates(t *testing.T) {
	outDir := t.TempDir()
	runSweep(t, outDir, 2)
	benchFlag := filepath.Join("testdata", "bench")

	var out, errOut strings.Builder
	err := cmdCheck([]string{
		"-out", outDir, "-bench", benchFlag,
		"-baselines", filepath.Join("..", "..", "lab", "baselines.json"),
	}, &out, &errOut)
	if err != nil {
		t.Fatalf("committed baselines fail the example sweep: %v\n%s", err, errOut.String())
	}
	if !strings.Contains(out.String(), "all gates pass") {
		t.Errorf("missing pass summary: %s", out.String())
	}

	// Inject an impossible floor: rohatgi at 20% loss cannot authenticate
	// 99.9% of packets.
	badPath := filepath.Join(t.TempDir(), "bad.json")
	bad := `{"bounds":[{"case":"rohatgi","p":0.2,"min_qmin":0.999}],"bench_threshold":0.1}`
	if err := os.WriteFile(badPath, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	err = cmdCheck([]string{"-out", outDir, "-bench", benchFlag, "-baselines", badPath}, &out, &errOut)
	if err == nil {
		t.Fatal("injected q_min floor violation not detected")
	}
	if !strings.Contains(err.Error(), "violation") || !strings.Contains(errOut.String(), "baseline floor") {
		t.Errorf("violation not reported: err=%v, stderr=%s", err, errOut.String())
	}
}

// TestRunRejectsBadInvocations pins CLI error handling.
func TestRunRejectsBadInvocations(t *testing.T) {
	if err := cmdRun(nil, io.Discard); err == nil {
		t.Error("run without a config accepted")
	}
	if err := cmdRun([]string{"a.json", "b.json"}, io.Discard); err == nil {
		t.Error("run with two configs accepted")
	}
	if err := cmdRun([]string{"missing.yaml"}, io.Discard); err == nil || !strings.Contains(err.Error(), "YAML") {
		t.Errorf("YAML config must get a targeted error, got %v", err)
	}
	if err := cmdRender([]string{"stray"}, io.Discard); err == nil {
		t.Error("render with positional args accepted")
	}
	if err := cmdCheck([]string{"-baselines", "does-not-exist.json"}, io.Discard, io.Discard); err == nil {
		t.Error("check with missing baselines accepted")
	}
}
