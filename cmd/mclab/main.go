// Command mclab orchestrates experiment sweeps and renders the regression
// dashboard (ROADMAP item 5). A declarative JSON scenario config names the
// cross product schemes × loss models × block sizes × scales; each cell
// runs through the analytic, Monte-Carlo, netsim and (optionally) serving
// paths, and every artifact a run writes is byte-identical at any -workers
// setting.
//
// Usage:
//
//	mclab run examples/lab/basic.json           # execute a sweep
//	mclab render                                # join runs + BENCH history
//	mclab check                                 # evaluate regression gates
//
// run writes a timestamped result directory under -out (config echo,
// per-cell q_min across layers, obs metrics snapshots, diagnose reports).
// render joins every run under -out with every BENCH_*.json under the
// -bench directories into one markdown+HTML dashboard. check evaluates the
// committed baselines (conformance bound tables plus a bench-delta
// threshold) against the newest run and bench snapshot and exits non-zero
// on any violation.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"mcauth/internal/lab"
	"mcauth/internal/obs"
)

const usage = `usage:
  mclab run <config.json> [-out DIR] [-workers N] [-stamp STAMP]
  mclab render [-out DIR] [-bench DIR,DIR...] [-md FILE] [-html FILE]
  mclab check [-out DIR] [-bench DIR,DIR...] [-baselines FILE]
`

func main() {
	if len(os.Args) < 2 {
		fmt.Fprint(os.Stderr, usage)
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:], os.Stdout)
	case "render":
		err = cmdRender(os.Args[2:], os.Stdout)
	case "check":
		err = cmdCheck(os.Args[2:], os.Stdout, os.Stderr)
	case "-h", "-help", "--help", "help":
		fmt.Print(usage)
		return
	default:
		fmt.Fprintf(os.Stderr, "mclab: unknown command %q\n%s", os.Args[1], usage)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mclab:", err)
		os.Exit(1)
	}
}

func cmdRun(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mclab run", flag.ContinueOnError)
	outDir := fs.String("out", "lab-results", "result directory root")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "cells evaluated concurrently (any value yields byte-identical artifacts)")
	stamp := fs.String("stamp", "", "fixed run stamp instead of UTC now (for reproducible directory names)")
	// Accept `mclab run config.json -workers 4` as well as flags-first:
	// stdlib flag parsing stops at the first positional, so lift a leading
	// config path out before parsing.
	var cfgPath string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cfgPath, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case cfgPath == "" && fs.NArg() == 1:
		cfgPath = fs.Arg(0)
	case cfgPath != "" && fs.NArg() == 0:
	default:
		return fmt.Errorf("run needs exactly one config file")
	}
	cfg, err := lab.ReadConfig(cfgPath)
	if err != nil {
		return err
	}
	run, dir, err := lab.Run(cfg, *workers, *outDir, *stamp)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "mclab: run %s: %d cells -> %s\n", run.RunID(), len(run.Cells), dir)
	return nil
}

// benchDirs splits the -bench flag; the default looks for BENCH_*.json in
// the repo root and the committed lab/bench history.
func benchDirs(flagVal string) []string {
	var out []string
	for _, d := range strings.Split(flagVal, ",") {
		if d = strings.TrimSpace(d); d != "" {
			out = append(out, d)
		}
	}
	return out
}

func gatherInput(outDir string, bench []string) (lab.DashboardInput, error) {
	runs, err := lab.LoadRuns(outDir)
	if err != nil {
		return lab.DashboardInput{}, err
	}
	in := lab.DashboardInput{Runs: runs, ServerMetrics: make(map[string]map[string]obs.Snapshot)}
	for _, run := range runs {
		sm, err := lab.LoadServerMetrics(filepath.Join(outDir, run.RunID()))
		if err != nil {
			return lab.DashboardInput{}, err
		}
		if sm != nil {
			in.ServerMetrics[run.RunID()] = sm
		}
	}
	in.Bench, err = lab.LoadBenchHistory(bench...)
	if err != nil {
		return lab.DashboardInput{}, err
	}
	return in, nil
}

func cmdRender(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mclab render", flag.ContinueOnError)
	outDir := fs.String("out", "lab-results", "result directory root to join")
	bench := fs.String("bench", ".,lab/bench", "comma-separated directories scanned for BENCH_*.json")
	mdPath := fs.String("md", "lab-results/dashboard.md", "markdown dashboard output")
	htmlPath := fs.String("html", "lab-results/dashboard.html", "HTML dashboard output (empty to skip)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("render takes no positional arguments")
	}
	in, err := gatherInput(*outDir, benchDirs(*bench))
	if err != nil {
		return err
	}
	var md strings.Builder
	if err := lab.RenderMarkdown(&md, in); err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(*mdPath), 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(*mdPath, []byte(md.String()), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "mclab: dashboard: %s (%d runs, %d bench snapshots)\n", *mdPath, len(in.Runs), len(in.Bench))
	if *htmlPath != "" {
		f, err := os.Create(*htmlPath)
		if err != nil {
			return err
		}
		if err := lab.RenderHTML(f, md.String()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "mclab: dashboard: %s\n", *htmlPath)
	}
	return nil
}

func cmdCheck(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("mclab check", flag.ContinueOnError)
	outDir := fs.String("out", "lab-results", "result directory root")
	bench := fs.String("bench", ".,lab/bench", "comma-separated directories scanned for BENCH_*.json")
	baselinesPath := fs.String("baselines", "lab/baselines.json", "committed gate file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("check takes no positional arguments")
	}
	baselines, err := lab.ReadBaselines(*baselinesPath)
	if err != nil {
		return err
	}
	runs, err := lab.LoadRuns(*outDir)
	if err != nil {
		return err
	}
	history, err := lab.LoadBenchHistory(benchDirs(*bench)...)
	if err != nil {
		return err
	}

	var violations []error
	if len(runs) == 0 {
		fmt.Fprintf(out, "mclab: check: no runs under %s; q_min gates not evaluated\n", *outDir)
	} else {
		latest := runs[len(runs)-1]
		errs := baselines.CheckRun(latest)
		fmt.Fprintf(out, "mclab: check: run %s: %d cells, %d violation(s)\n", latest.RunID(), len(latest.Cells), len(errs))
		violations = append(violations, errs...)
	}
	errs := baselines.CheckBench(history)
	fmt.Fprintf(out, "mclab: check: bench history: %d snapshot(s), %d violation(s)\n", len(history), len(errs))
	violations = append(violations, errs...)

	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(errOut, "mclab: VIOLATION:", v)
		}
		return fmt.Errorf("%d regression gate violation(s)", len(violations))
	}
	fmt.Fprintln(out, "mclab: check: all gates pass")
	return nil
}
