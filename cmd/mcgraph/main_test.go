package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunMetricsAllSchemes(t *testing.T) {
	for _, name := range []string{"rohatgi", "emss", "augchain", "authtree", "signeach"} {
		name := name
		t.Run(name, func(t *testing.T) {
			if err := run([]string{"-scheme", name, "-n", "12", "-q"}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunDOT(t *testing.T) {
	if err := run([]string{"-scheme", "emss", "-n", "8", "-dot"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExportImportPrune(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "topo.json")
	// Export to a file by temporarily redirecting stdout.
	old := os.Stdout
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = f
	err = run([]string{"-scheme", "emss", "-n", "20", "-m", "3", "-export"})
	os.Stdout = old
	if closeErr := f.Close(); closeErr != nil {
		t.Fatal(closeErr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-topo", path, "-p", "0.2", "-prune", "0.9"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-scheme", "nope"}); err == nil {
		t.Error("unknown scheme should fail")
	}
	if err := run([]string{"-topo", "/does/not/exist.json"}); err == nil {
		t.Error("missing topology file should fail")
	}
	if err := run([]string{"-scheme", "rohatgi", "-n", "20", "-p", "0.5", "-prune", "0.99"}); err == nil {
		t.Error("unmeetable prune target should fail")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("unknown flag should fail")
	}
}
