package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"mcauth/internal/obs"
)

func TestRunMetricsAllSchemes(t *testing.T) {
	for _, name := range []string{"rohatgi", "emss", "augchain", "authtree", "signeach"} {
		name := name
		t.Run(name, func(t *testing.T) {
			if err := run([]string{"-scheme", name, "-n", "12", "-q"}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunDOT(t *testing.T) {
	if err := run([]string{"-scheme", "emss", "-n", "8", "-dot"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExportImportPrune(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "topo.json")
	// Export to a file by temporarily redirecting stdout.
	old := os.Stdout
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = f
	err = run([]string{"-scheme", "emss", "-n", "20", "-m", "3", "-export"})
	os.Stdout = old
	if closeErr := f.Close(); closeErr != nil {
		t.Fatal(closeErr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-topo", path, "-p", "0.2", "-prune", "0.9"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-scheme", "nope"}); err == nil {
		t.Error("unknown scheme should fail")
	}
	if err := run([]string{"-topo", "/does/not/exist.json"}); err == nil {
		t.Error("missing topology file should fail")
	}
	if err := run([]string{"-scheme", "rohatgi", "-n", "20", "-p", "0.5", "-prune", "0.99"}); err == nil {
		t.Error("unmeetable prune target should fail")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("unknown flag should fail")
	}
}

// TestReplayObservability checks -trace/-metrics parity with mcsim: the
// lossless replay authenticates the whole block, and the trace it writes is
// a valid lifecycle stream (run_meta first, every packet delivered and
// authenticated).
func TestReplayObservability(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "replay.jsonl")
	metricsPath := filepath.Join(dir, "replay-metrics.json")
	const n = 12
	if err := run([]string{"-scheme", "emss", "-n", "12", "-trace", tracePath, "-metrics", metricsPath}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, skipped, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("trace has %d undecodable lines", skipped)
	}
	if len(events) == 0 || events[0].Type != obs.EventRunMeta {
		t.Fatal("trace must start with run_meta")
	}
	var delivered, authed int
	for _, e := range events {
		switch e.Type {
		case obs.EventDelivered:
			delivered++
		case obs.EventAuthenticated:
			authed++
		}
	}
	if delivered != n || authed != n {
		t.Errorf("delivered=%d authenticated=%d, want %d each", delivered, authed, n)
	}
	raw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	if got := snap.Counters["verifier.authenticated"]; got != int64(n) {
		t.Errorf("verifier.authenticated = %d, want %d", got, n)
	}

	bad := filepath.Join(dir, "no-such-dir", "out")
	for _, flagName := range []string{"-trace", "-metrics"} {
		if err := run([]string{"-scheme", "emss", "-n", "8", flagName, bad}); err == nil {
			t.Errorf("%s %s should fail", flagName, bad)
		}
	}
}
