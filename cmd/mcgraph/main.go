// Command mcgraph dumps a scheme's dependence-graph: its static metrics
// (overhead, delay, buffers — the paper's Section 3 quantities), optional
// per-packet authentication probabilities, and Graphviz DOT output.
//
// Usage:
//
//	mcgraph -scheme emss -n 20 -m 2 -d 1 -p 0.2
//	mcgraph -scheme augchain -n 21 -a 3 -b 3 -dot > ac.dot
//	mcgraph -scheme emss -n 20 -export > design.json   # export, hand-edit...
//	mcgraph -topo design.json -q                       # ...and re-analyze
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"mcauth/internal/construct"
	"mcauth/internal/crypto"
	"mcauth/internal/depgraph"
	"mcauth/internal/obs"
	"mcauth/internal/scheme"
	"mcauth/internal/scheme/augchain"
	"mcauth/internal/scheme/authtree"
	"mcauth/internal/scheme/emss"
	"mcauth/internal/scheme/rohatgi"
	"mcauth/internal/scheme/signeach"
	"mcauth/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mcgraph:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mcgraph", flag.ContinueOnError)
	var (
		schemeName = fs.String("scheme", "emss", "scheme: rohatgi|emss|augchain|authtree|signeach")
		n          = fs.Int("n", 20, "block size")
		m          = fs.Int("m", 2, "EMSS m")
		d          = fs.Int("d", 1, "EMSS d")
		a          = fs.Int("a", 3, "augmented chain a")
		b          = fs.Int("b", 3, "augmented chain b")
		p          = fs.Float64("p", 0.1, "loss probability for q_i estimation")
		dot        = fs.Bool("dot", false, "emit Graphviz DOT instead of metrics")
		topoPath   = fs.String("topo", "", "load a custom topology from a JSON file instead of -scheme")
		export     = fs.Bool("export", false, "emit the topology as JSON instead of metrics")
		pruneTo    = fs.Float64("prune", 0, "prune redundant edges while keeping q_min above this target (uses -p as the design loss rate)")
		perPacket  = fs.Bool("q", false, "print per-packet q_i (exact for n<=22, Monte-Carlo beyond)")
		trials     = fs.Int("trials", 20000, "Monte-Carlo trials for large blocks")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file at exit")
		trace      = fs.String("trace", "", "replay one lossless block through the verifier and write its JSONL lifecycle trace to this file")
		metrics    = fs.String("metrics", "", "replay one lossless block and write verifier metrics: '-' for a text table on stdout, else JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	body := func() error {
		signer := crypto.NewSignerFromString("mcgraph")
		var s scheme.Scheme
		if *topoPath != "" {
			f, err := os.Open(*topoPath)
			if err != nil {
				return err
			}
			defer f.Close()
			topo, err := scheme.LoadTopology(f)
			if err != nil {
				return err
			}
			s, err = scheme.NewChained(topo, signer)
			if err != nil {
				return err
			}
			if s, err = maybePrune(s, signer, *pruneTo, *p); err != nil {
				return err
			}
			if err := report(s, *dot, *export, *perPacket, *p, *trials); err != nil {
				return err
			}
			return replay(s, *trace, *metrics)
		}
		switch *schemeName {
		case "rohatgi":
			s, err = rohatgi.New(*n, signer)
		case "emss":
			s, err = emss.New(emss.Config{N: *n, M: *m, D: *d}, signer)
		case "augchain":
			s, err = augchain.New(augchain.Config{N: *n, A: *a, B: *b}, signer)
		case "authtree":
			s, err = authtree.New(*n, signer)
		case "signeach":
			s, err = signeach.New(*n, signer)
		default:
			return fmt.Errorf("unknown scheme %q", *schemeName)
		}
		if err != nil {
			return err
		}
		if s, err = maybePrune(s, signer, *pruneTo, *p); err != nil {
			return err
		}
		if err := report(s, *dot, *export, *perPacket, *p, *trials); err != nil {
			return err
		}
		return replay(s, *trace, *metrics)
	}
	if err := body(); err != nil {
		stopProfiles()
		return err
	}
	return stopProfiles()
}

// maybePrune applies the Section 5 redundant-edge pruning pass when a
// target is given, rebuilding the scheme from the slimmed topology.
func maybePrune(s scheme.Scheme, signer crypto.Signer, target, p float64) (scheme.Scheme, error) {
	if target == 0 {
		return s, nil
	}
	g, err := s.Graph()
	if err != nil {
		return nil, err
	}
	plan, removed, err := construct.Prune(g, construct.Constraint{
		N:          g.N(),
		P:          p,
		TargetQMin: target,
	})
	if err != nil {
		return nil, err
	}
	if !plan.Met {
		return nil, fmt.Errorf("graph cannot meet q_min >= %v at p=%v (achieves %v)", target, p, plan.QMin)
	}
	fmt.Fprintf(os.Stderr, "pruned %d redundant edges (q_min %.4f >= %.4f)\n", removed, plan.QMin, target)
	return scheme.NewChained(scheme.Topology{
		Name:  s.Name() + "+pruned",
		N:     plan.Graph.N(),
		Root:  plan.Graph.Root(),
		Edges: plan.Graph.Edges(),
	}, signer)
}

// replay pushes one lossless, in-order block through the scheme's verifier
// with observability wired up, so the static graph view can be compared
// against the verifier's actual packet lifecycle (same -trace/-metrics
// semantics as mcsim, minus the network).
func replay(s scheme.Scheme, tracePath, metricsPath string) error {
	if tracePath == "" && metricsPath == "" {
		return nil
	}
	var tracer *obs.JSONLTracer
	var reg *obs.Registry
	var metricsFile *os.File
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return fmt.Errorf("trace output unwritable: %w", err)
		}
		tracer = obs.NewJSONLTracer(f)
	}
	if metricsPath != "" {
		reg = obs.NewRegistry()
		if metricsPath != "-" {
			f, err := os.Create(metricsPath)
			if err != nil {
				return fmt.Errorf("metrics output unwritable: %w", err)
			}
			metricsFile = f
		}
	}

	payloads := make([][]byte, s.BlockSize())
	for i := range payloads {
		payloads[i] = fmt.Appendf(nil, "payload-%06d", i)
	}
	pkts, err := s.Authenticate(1, payloads)
	if err != nil {
		return err
	}
	v, err := s.NewVerifier()
	if err != nil {
		return err
	}
	if in, ok := v.(obs.Instrumented); ok {
		if tracer != nil {
			in.SetTracer(obs.ReceiverTracer{T: tracer, Receiver: 0})
		}
		if reg != nil {
			in.SetMetrics(reg)
		}
	}
	start := time.Unix(0, 0)
	if tracer != nil {
		meta := obs.Event{
			Type:     obs.EventRunMeta,
			Receiver: -1,
			Scheme:   s.Name(),
			Wire:     len(pkts),
			Block:    1,
			TimeNS:   obs.TimeNS(start),
		}
		for _, p := range pkts {
			if len(p.Signature) > 0 {
				meta.Root = p.Index
				break
			}
		}
		tracer.Emit(meta)
	}
	const step = time.Millisecond
	for i, p := range pkts {
		at := start.Add(time.Duration(i) * step)
		if tracer != nil {
			tracer.Emit(obs.Event{Type: obs.EventSent, Receiver: -1, Wire: i + 1, Index: p.Index, Block: p.BlockID, TimeNS: obs.TimeNS(at)})
			tracer.Emit(obs.Event{Type: obs.EventDelivered, Receiver: 0, Wire: i + 1, Index: p.Index, Block: p.BlockID, TimeNS: obs.TimeNS(at)})
		}
		if _, err := v.Ingest(p, at); err != nil {
			return fmt.Errorf("replay ingest wire %d: %w", i+1, err)
		}
	}

	if tracer != nil {
		if err := tracer.Close(); err != nil {
			return fmt.Errorf("trace output: %w", err)
		}
	}
	if reg != nil {
		snap := reg.Snapshot()
		if metricsFile != nil {
			if err := snap.WriteJSON(metricsFile); err != nil {
				metricsFile.Close()
				return fmt.Errorf("metrics output: %w", err)
			}
			if err := metricsFile.Close(); err != nil {
				return fmt.Errorf("metrics output: %w", err)
			}
		} else {
			fmt.Println()
			if err := snap.WriteText(os.Stdout); err != nil {
				return err
			}
		}
	}
	return nil
}

// report renders the selected view of the scheme's graph.
func report(s scheme.Scheme, dot, export, perPacket bool, p float64, trials int) error {
	g, err := s.Graph()
	if err != nil {
		return err
	}
	if dot {
		return g.WriteDOT(os.Stdout, s.Name())
	}
	if export {
		topo, err := scheme.TopologyOf(s)
		if err != nil {
			return err
		}
		return scheme.SaveTopology(os.Stdout, topo)
	}

	metrics, err := g.ComputeMetrics(depgraph.DefaultSizes())
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "scheme\t%s\n", s.Name())
	fmt.Fprintf(w, "vertices / edges\t%d / %d\n", metrics.N, metrics.Edges)
	fmt.Fprintf(w, "root (P_sign)\t%d\n", g.Root())
	fmt.Fprintf(w, "avg hashes per packet\t%.3f\n", metrics.AvgHashesPerPkt)
	fmt.Fprintf(w, "max hashes per packet\t%d\n", metrics.MaxHashesPerPkt)
	fmt.Fprintf(w, "overhead (bytes/pkt)\t%.1f\n", metrics.OverheadBytes)
	fmt.Fprintf(w, "max receiver delay (slots)\t%d\n", metrics.MaxDelaySlots)
	fmt.Fprintf(w, "hash buffer (pkts)\t%d\n", metrics.HashBufferPkts)
	fmt.Fprintf(w, "message buffer (pkts)\t%d\n", metrics.MsgBufferPkts)
	fmt.Fprintf(w, "unreachable vertices\t%d\n", metrics.UnreachableCount)
	if err := w.Flush(); err != nil {
		return err
	}
	if !perPacket {
		return nil
	}

	var res depgraph.AuthResult
	if g.N() <= 22 {
		res, err = g.ExactAuthProb(p)
	} else {
		res, err = g.MonteCarloAuthProb(depgraph.BernoulliPattern(p), trials, stats.NewRNG(1))
	}
	if err != nil {
		return err
	}
	fmt.Printf("\nper-packet q_i at p=%.3f (q_min=%.4f):\n", p, res.QMin)
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "packet\tq_i\tshortest path\tdisjoint paths")
	dists := g.ShortestPathLengths()
	for i := 1; i <= g.N(); i++ {
		k, err := g.VertexDisjointPaths(i)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "P%d\t%.4f\t%d\t%d\n", i, res.Q[i], dists[i], k)
	}
	return w.Flush()
}
